//! Socket-level load generator for the `powergear serve --listen` daemon.
//!
//! Drives a running daemon over real TCP connections with `PGRPC` Predict
//! frames (`docs/PROTOCOL.md`) from many concurrent clients, and reports
//! the numbers an operator tunes against (`docs/SERVING.md`): p50/p95/p99
//! request latency and sustained graph throughput. The `loadgen` binary
//! is the CLI wrapper; [`crate::perf::run_perf_suite`] reuses
//! [`run_load`] for the `serve_throughput` CI metric.
//!
//! When the caller knows the per-graph ground truth (daemon spawned from
//! the same process against a known model), pass `expected` and the
//! report counts bit-mismatches — under the house invariant, a served
//! prediction must be bit-identical to the in-process sequential path no
//! matter how requests were coalesced into batches.

//! Runs can also be bracketed with `StatsV2` snapshots
//! ([`fetch_stats_v2`] / [`server_delta`]): the daemon's own per-model
//! counters across the run are cross-checked against the client-side
//! tallies, and the server's batch-size distribution (the number the
//! micro-batcher actually achieved) is reported next to client latency.

use pg_graphcon::PowerGraph;
use pg_store::frame::{self, FrameType, PredictRequest, PredictResponse};
use pg_store::StatsV2Response;
use pg_util::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Load shape: `clients` concurrent connections, each sending `requests`
/// back-to-back Predict frames of `graphs_per_request` graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Predict requests per client.
    pub requests: usize,
    /// Graphs per Predict request.
    pub graphs_per_request: usize,
}

impl LoadConfig {
    /// CI quick mode: enough traffic to exercise coalescing, fast enough
    /// for a smoke gate.
    pub fn quick() -> Self {
        LoadConfig {
            clients: 4,
            requests: 8,
            graphs_per_request: 4,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Per-request wall latencies in seconds, sorted ascending.
    pub latencies: Vec<f64>,
    /// Total graphs served successfully.
    pub graphs: u64,
    /// Wall time of the whole run (first connect to last response).
    pub elapsed_s: f64,
    /// Requests that failed (socket error or an `Error` frame).
    pub errors: u64,
    /// Predictions that were not bit-identical to `expected` (0 when no
    /// expectation was provided).
    pub mismatches: u64,
    /// Distinct model names observed across all responses.
    pub models_seen: BTreeSet<String>,
}

impl LoadReport {
    /// Latency percentile in seconds (`q` in 0..=100) by nearest-rank.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q / 100.0) * self.latencies.len() as f64).ceil() as usize;
        self.latencies[rank.saturating_sub(1).min(self.latencies.len() - 1)]
    }

    /// Graphs served per second of wall time.
    pub fn graphs_per_sec(&self) -> f64 {
        self.graphs as f64 / self.elapsed_s.max(1e-9)
    }

    /// Requests answered per second of wall time.
    pub fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.elapsed_s.max(1e-9)
    }
}

/// Per-client results folded into the final [`LoadReport`].
struct ClientOutcome {
    latencies: Vec<f64>,
    graphs: u64,
    errors: u64,
    mismatches: u64,
    models_seen: BTreeSet<String>,
}

/// Runs one load shape against a live daemon.
///
/// Each request rotates its graphs through `graphs` (client- and
/// request-dependent offsets, so concurrent batches mix different
/// compositions). `expected`, when given, must align index-wise with
/// `graphs`: response bit `i` of a request is compared against
/// `expected[index of its graph]`.
///
/// # Errors
///
/// An error string when no request succeeded (daemon unreachable).
pub fn run_load(
    addr: SocketAddr,
    kernel: &str,
    graphs: &[PowerGraph],
    expected: Option<&[(f64, f64)]>,
    cfg: &LoadConfig,
) -> Result<LoadReport, String> {
    if graphs.is_empty() {
        return Err("loadgen needs at least one graph".into());
    }
    let graphs: Arc<[PowerGraph]> = graphs.to_vec().into();
    let expected: Option<Arc<[(f64, f64)]>> = expected.map(|e| e.to_vec().into());
    let kernel = kernel.to_string();
    let t_run = Instant::now();
    let workers: Vec<thread::JoinHandle<ClientOutcome>> = (0..cfg.clients.max(1))
        .map(|c| {
            let graphs = Arc::clone(&graphs);
            let expected = expected.clone();
            let kernel = kernel.clone();
            let cfg = *cfg;
            thread::spawn(move || client_loop(addr, &kernel, &graphs, expected.as_deref(), &cfg, c))
        })
        .collect();

    let mut report = LoadReport {
        latencies: Vec::new(),
        graphs: 0,
        elapsed_s: 0.0,
        errors: 0,
        mismatches: 0,
        models_seen: BTreeSet::new(),
    };
    for w in workers {
        let Ok(out) = w.join() else {
            report.errors += 1;
            continue;
        };
        report.latencies.extend(out.latencies);
        report.graphs += out.graphs;
        report.errors += out.errors;
        report.mismatches += out.mismatches;
        report.models_seen.extend(out.models_seen);
    }
    report.elapsed_s = t_run.elapsed().as_secs_f64();
    report
        .latencies
        .sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    if report.latencies.is_empty() {
        return Err(format!(
            "no request succeeded against {addr} ({} errors)",
            report.errors
        ));
    }
    Ok(report)
}

/// One `StatsV2` round trip against a live daemon on a fresh connection.
///
/// # Errors
///
/// An error string on connect/frame failures, or when the daemon answers
/// with an `Error` frame (a pre-StatsV2 server).
pub fn fetch_stats_v2(addr: SocketAddr) -> Result<StatsV2Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let req = frame::RawFrame::new(FrameType::StatsV2, Vec::new());
    frame::write_frame(&mut stream, &req).map_err(|e| e.to_string())?;
    let resp = frame::read_frame(&mut stream)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "server closed the connection".to_string())?;
    match resp.frame_type() {
        Some(FrameType::StatsV2Ok) => {
            StatsV2Response::from_payload(&resp.payload).map_err(|e| e.to_string())
        }
        Some(FrameType::Error) => Err("server does not speak StatsV2 (older daemon?)".into()),
        other => Err(format!("unexpected response frame {other:?}")),
    }
}

/// Server-side counter movement across one load run, from `StatsV2`
/// snapshots taken before and after. All `serve_*` series are summed
/// across model labels, so the delta is meaningful even when a run
/// touches several models (or an external daemon serves other traffic —
/// in that case the cross-check is advisory, not exact).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerDelta {
    /// Requests the daemon served to completion (`serve_requests_total`).
    pub requests: u64,
    /// Graphs inside those requests (`serve_graphs_total`).
    pub graphs: u64,
    /// Micro-batches the coalescer formed (`serve_batches_total`).
    pub batches: u64,
    /// Requests the daemon rejected (`serve_errors_total`).
    pub errors: u64,
    /// Batch-size distribution over the run (`serve_batch_size_graphs`
    /// summed across models), when the daemon exported one.
    pub batch_size: Option<HistogramSnapshot>,
}

impl ServerDelta {
    /// True when server counters exactly match the client-observed run:
    /// every OK response was counted once server-side, with the same
    /// total graph count.
    pub fn matches_client(&self, report: &LoadReport) -> bool {
        self.requests == report.latencies.len() as u64 && self.graphs == report.graphs
    }
}

/// Sum of every counter series named `name`, across label sets.
fn counter_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|c| c.name == name)
        .map(|c| c.value)
        .sum()
}

/// Bucket-wise sum of every histogram series named `name`; all series of
/// one name share bounds by construction (the registry rejects a bound
/// mismatch), so the merge is positional.
fn histogram_sum(snap: &MetricsSnapshot, name: &str) -> Option<HistogramSnapshot> {
    let mut merged: Option<HistogramSnapshot> = None;
    for h in snap.histograms.iter().filter(|h| h.name == name) {
        match &mut merged {
            None => {
                let mut h = h.clone();
                h.labels.clear();
                merged = Some(h);
            }
            Some(m) => {
                m.count += h.count;
                m.sum += h.sum;
                for (dst, src) in m.buckets.iter_mut().zip(&h.buckets) {
                    dst.1 += src.1;
                }
            }
        }
    }
    merged
}

/// Counter/histogram movement from snapshot `before` to `after`.
///
/// Counters are monotonic, so saturating subtraction only loses
/// information if the daemon restarted mid-run (in which case the whole
/// comparison is void anyway).
pub fn server_delta(before: &StatsV2Response, after: &StatsV2Response) -> ServerDelta {
    let (b, a) = (&before.snapshot, &after.snapshot);
    let diff = |name: &str| counter_sum(a, name).saturating_sub(counter_sum(b, name));
    let batch_size = histogram_sum(a, "serve_batch_size_graphs").map(|mut h| {
        if let Some(prev) = histogram_sum(b, "serve_batch_size_graphs") {
            h.count = h.count.saturating_sub(prev.count);
            h.sum = h.sum.saturating_sub(prev.sum);
            for (dst, src) in h.buckets.iter_mut().zip(&prev.buckets) {
                dst.1 = dst.1.saturating_sub(src.1);
            }
        }
        h
    });
    ServerDelta {
        requests: diff("serve_requests_total"),
        graphs: diff("serve_graphs_total"),
        batches: diff("serve_batches_total"),
        errors: diff("serve_errors_total"),
        batch_size,
    }
}

fn client_loop(
    addr: SocketAddr,
    kernel: &str,
    graphs: &[PowerGraph],
    expected: Option<&[(f64, f64)]>,
    cfg: &LoadConfig,
    client_id: usize,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(cfg.requests),
        graphs: 0,
        errors: 0,
        mismatches: 0,
        models_seen: BTreeSet::new(),
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        out.errors += cfg.requests as u64;
        return out;
    };
    let _ = stream.set_nodelay(true);
    let per = cfg.graphs_per_request.max(1);
    for r in 0..cfg.requests {
        // rotate through the graph pool so concurrent batches coalesce
        // different compositions
        let indices: Vec<usize> = (0..per)
            .map(|i| (client_id * 31 + r * per + i) % graphs.len())
            .collect();
        let request = PredictRequest {
            kernel: kernel.to_string(),
            graphs: indices.iter().map(|&i| graphs[i].clone()).collect(),
        };
        let raw = frame::RawFrame::new(FrameType::Predict, request.to_payload());
        let t = Instant::now();
        let ok = frame::write_frame(&mut stream, &raw).is_ok();
        let resp = if ok {
            frame::read_frame(&mut stream).ok().flatten()
        } else {
            None
        };
        let Some(resp) = resp else {
            out.errors += 1;
            continue;
        };
        let latency = t.elapsed().as_secs_f64();
        if resp.frame_type() != Some(FrameType::PredictOk) {
            out.errors += 1;
            continue;
        }
        let Ok(decoded) = PredictResponse::from_payload(&resp.payload) else {
            out.errors += 1;
            continue;
        };
        if decoded.predictions.len() != indices.len() {
            out.errors += 1;
            continue;
        }
        out.latencies.push(latency);
        out.graphs += indices.len() as u64;
        out.models_seen.insert(decoded.model);
        if let Some(expected) = expected {
            for (&gi, &(t, d)) in indices.iter().zip(&decoded.predictions) {
                let (et, ed) = expected[gi];
                if t.to_bits() != et.to_bits() || d.to_bits() != ed.to_bits() {
                    out.mismatches += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<f64>) -> LoadReport {
        LoadReport {
            latencies,
            graphs: 10,
            elapsed_s: 2.0,
            errors: 0,
            mismatches: 0,
            models_seen: BTreeSet::new(),
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = report((1..=100).map(|i| i as f64).collect());
        assert_eq!(r.percentile(50.0), 50.0);
        assert_eq!(r.percentile(95.0), 95.0);
        assert_eq!(r.percentile(99.0), 99.0);
        assert_eq!(r.percentile(100.0), 100.0);
    }

    #[test]
    fn percentile_of_one_sample() {
        let r = report(vec![0.25]);
        assert_eq!(r.percentile(50.0), 0.25);
        assert_eq!(r.percentile(99.0), 0.25);
    }

    #[test]
    fn throughput_uses_wall_time() {
        let r = report(vec![0.1; 4]);
        assert!((r.graphs_per_sec() - 5.0).abs() < 1e-9);
        assert!((r.requests_per_sec() - 2.0).abs() < 1e-9);
    }

    fn stats(
        series: &[(&str, &str, u64)],
        hist: &[(&str, u64, u64, &[(u64, u64)])],
    ) -> StatsV2Response {
        let mut v2 = StatsV2Response::default();
        for &(name, model, value) in series {
            v2.snapshot
                .counters
                .push(pg_util::metrics::CounterSnapshot {
                    name: name.into(),
                    labels: vec![("model".into(), model.into())],
                    value,
                });
        }
        for &(model, count, sum, buckets) in hist {
            v2.snapshot.histograms.push(HistogramSnapshot {
                name: "serve_batch_size_graphs".into(),
                labels: vec![("model".into(), model.into())],
                count,
                sum,
                buckets: buckets.to_vec(),
            });
        }
        v2
    }

    #[test]
    fn delta_sums_across_models_and_subtracts_before() {
        let before = stats(
            &[
                ("serve_requests_total", "a", 5),
                ("serve_graphs_total", "a", 20),
            ],
            &[("a", 2, 8, &[(4, 2), (u64::MAX, 0)])],
        );
        let after = stats(
            &[
                ("serve_requests_total", "a", 9),
                ("serve_requests_total", "b", 3),
                ("serve_graphs_total", "a", 36),
                ("serve_graphs_total", "b", 12),
                ("serve_batches_total", "a", 4),
            ],
            &[
                ("a", 5, 20, &[(4, 5), (u64::MAX, 0)]),
                ("b", 1, 4, &[(4, 1), (u64::MAX, 0)]),
            ],
        );
        let d = server_delta(&before, &after);
        assert_eq!(d.requests, 7); // (9 - 5) + 3
        assert_eq!(d.graphs, 28); // (36 - 20) + 12
        assert_eq!(d.batches, 4);
        assert_eq!(d.errors, 0);
        let bs = d.batch_size.expect("batch-size histogram");
        assert_eq!(bs.count, 4); // (5 + 1) - 2
        assert_eq!(bs.sum, 16); // (20 + 4) - 8
        assert_eq!(bs.buckets, vec![(4, 4), (u64::MAX, 0)]);
    }

    #[test]
    fn delta_matches_client_checks_requests_and_graphs() {
        let d = ServerDelta {
            requests: 3,
            graphs: 12,
            batches: 2,
            errors: 0,
            batch_size: None,
        };
        let mut r = report(vec![0.1, 0.2, 0.3]);
        r.graphs = 12;
        assert!(d.matches_client(&r));
        r.graphs = 11;
        assert!(!d.matches_client(&r));
    }

    #[test]
    fn delta_without_snapshots_is_zero() {
        let empty = StatsV2Response::default();
        let d = server_delta(&empty, &empty);
        assert_eq!(d.requests, 0);
        assert!(d.batch_size.is_none());
    }
}
