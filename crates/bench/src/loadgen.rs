//! Socket-level load generator for the `powergear serve --listen` daemon.
//!
//! Drives a running daemon over real TCP connections with `PGRPC` Predict
//! frames (`docs/PROTOCOL.md`) from many concurrent clients, and reports
//! the numbers an operator tunes against (`docs/SERVING.md`): p50/p95/p99
//! request latency and sustained graph throughput. The `loadgen` binary
//! is the CLI wrapper; [`crate::perf::run_perf_suite`] reuses
//! [`run_load`] for the `serve_throughput` CI metric.
//!
//! When the caller knows the per-graph ground truth (daemon spawned from
//! the same process against a known model), pass `expected` and the
//! report counts bit-mismatches — under the house invariant, a served
//! prediction must be bit-identical to the in-process sequential path no
//! matter how requests were coalesced into batches.

use pg_graphcon::PowerGraph;
use pg_store::frame::{self, FrameType, PredictRequest, PredictResponse};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Load shape: `clients` concurrent connections, each sending `requests`
/// back-to-back Predict frames of `graphs_per_request` graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Predict requests per client.
    pub requests: usize,
    /// Graphs per Predict request.
    pub graphs_per_request: usize,
}

impl LoadConfig {
    /// CI quick mode: enough traffic to exercise coalescing, fast enough
    /// for a smoke gate.
    pub fn quick() -> Self {
        LoadConfig {
            clients: 4,
            requests: 8,
            graphs_per_request: 4,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Per-request wall latencies in seconds, sorted ascending.
    pub latencies: Vec<f64>,
    /// Total graphs served successfully.
    pub graphs: u64,
    /// Wall time of the whole run (first connect to last response).
    pub elapsed_s: f64,
    /// Requests that failed (socket error or an `Error` frame).
    pub errors: u64,
    /// Predictions that were not bit-identical to `expected` (0 when no
    /// expectation was provided).
    pub mismatches: u64,
    /// Distinct model names observed across all responses.
    pub models_seen: BTreeSet<String>,
}

impl LoadReport {
    /// Latency percentile in seconds (`q` in 0..=100) by nearest-rank.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q / 100.0) * self.latencies.len() as f64).ceil() as usize;
        self.latencies[rank.saturating_sub(1).min(self.latencies.len() - 1)]
    }

    /// Graphs served per second of wall time.
    pub fn graphs_per_sec(&self) -> f64 {
        self.graphs as f64 / self.elapsed_s.max(1e-9)
    }

    /// Requests answered per second of wall time.
    pub fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.elapsed_s.max(1e-9)
    }
}

/// Per-client results folded into the final [`LoadReport`].
struct ClientOutcome {
    latencies: Vec<f64>,
    graphs: u64,
    errors: u64,
    mismatches: u64,
    models_seen: BTreeSet<String>,
}

/// Runs one load shape against a live daemon.
///
/// Each request rotates its graphs through `graphs` (client- and
/// request-dependent offsets, so concurrent batches mix different
/// compositions). `expected`, when given, must align index-wise with
/// `graphs`: response bit `i` of a request is compared against
/// `expected[index of its graph]`.
///
/// # Errors
///
/// An error string when no request succeeded (daemon unreachable).
pub fn run_load(
    addr: SocketAddr,
    kernel: &str,
    graphs: &[PowerGraph],
    expected: Option<&[(f64, f64)]>,
    cfg: &LoadConfig,
) -> Result<LoadReport, String> {
    if graphs.is_empty() {
        return Err("loadgen needs at least one graph".into());
    }
    let graphs: Arc<[PowerGraph]> = graphs.to_vec().into();
    let expected: Option<Arc<[(f64, f64)]>> = expected.map(|e| e.to_vec().into());
    let kernel = kernel.to_string();
    let t_run = Instant::now();
    let workers: Vec<thread::JoinHandle<ClientOutcome>> = (0..cfg.clients.max(1))
        .map(|c| {
            let graphs = Arc::clone(&graphs);
            let expected = expected.clone();
            let kernel = kernel.clone();
            let cfg = *cfg;
            thread::spawn(move || client_loop(addr, &kernel, &graphs, expected.as_deref(), &cfg, c))
        })
        .collect();

    let mut report = LoadReport {
        latencies: Vec::new(),
        graphs: 0,
        elapsed_s: 0.0,
        errors: 0,
        mismatches: 0,
        models_seen: BTreeSet::new(),
    };
    for w in workers {
        let Ok(out) = w.join() else {
            report.errors += 1;
            continue;
        };
        report.latencies.extend(out.latencies);
        report.graphs += out.graphs;
        report.errors += out.errors;
        report.mismatches += out.mismatches;
        report.models_seen.extend(out.models_seen);
    }
    report.elapsed_s = t_run.elapsed().as_secs_f64();
    report
        .latencies
        .sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    if report.latencies.is_empty() {
        return Err(format!(
            "no request succeeded against {addr} ({} errors)",
            report.errors
        ));
    }
    Ok(report)
}

fn client_loop(
    addr: SocketAddr,
    kernel: &str,
    graphs: &[PowerGraph],
    expected: Option<&[(f64, f64)]>,
    cfg: &LoadConfig,
    client_id: usize,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(cfg.requests),
        graphs: 0,
        errors: 0,
        mismatches: 0,
        models_seen: BTreeSet::new(),
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        out.errors += cfg.requests as u64;
        return out;
    };
    let _ = stream.set_nodelay(true);
    let per = cfg.graphs_per_request.max(1);
    for r in 0..cfg.requests {
        // rotate through the graph pool so concurrent batches coalesce
        // different compositions
        let indices: Vec<usize> = (0..per)
            .map(|i| (client_id * 31 + r * per + i) % graphs.len())
            .collect();
        let request = PredictRequest {
            kernel: kernel.to_string(),
            graphs: indices.iter().map(|&i| graphs[i].clone()).collect(),
        };
        let raw = frame::RawFrame::new(FrameType::Predict, request.to_payload());
        let t = Instant::now();
        let ok = frame::write_frame(&mut stream, &raw).is_ok();
        let resp = if ok {
            frame::read_frame(&mut stream).ok().flatten()
        } else {
            None
        };
        let Some(resp) = resp else {
            out.errors += 1;
            continue;
        };
        let latency = t.elapsed().as_secs_f64();
        if resp.frame_type() != Some(FrameType::PredictOk) {
            out.errors += 1;
            continue;
        }
        let Ok(decoded) = PredictResponse::from_payload(&resp.payload) else {
            out.errors += 1;
            continue;
        };
        if decoded.predictions.len() != indices.len() {
            out.errors += 1;
            continue;
        }
        out.latencies.push(latency);
        out.graphs += indices.len() as u64;
        out.models_seen.insert(decoded.model);
        if let Some(expected) = expected {
            for (&gi, &(t, d)) in indices.iter().zip(&decoded.predictions) {
                let (et, ed) = expected[gi];
                if t.to_bits() != et.to_bits() || d.to_bits() != ed.to_bits() {
                    out.mismatches += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<f64>) -> LoadReport {
        LoadReport {
            latencies,
            graphs: 10,
            elapsed_s: 2.0,
            errors: 0,
            mismatches: 0,
            models_seen: BTreeSet::new(),
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = report((1..=100).map(|i| i as f64).collect());
        assert_eq!(r.percentile(50.0), 50.0);
        assert_eq!(r.percentile(95.0), 95.0);
        assert_eq!(r.percentile(99.0), 99.0);
        assert_eq!(r.percentile(100.0), 100.0);
    }

    #[test]
    fn percentile_of_one_sample() {
        let r = report(vec![0.25]);
        assert_eq!(r.percentile(50.0), 0.25);
        assert_eq!(r.percentile(99.0), 0.25);
    }

    #[test]
    fn throughput_uses_wall_time() {
        let r = report(vec![0.1; 4]);
        assert!((r.graphs_per_sec() - 5.0).abs() < 1e-9);
        assert!((r.requests_per_sec() - 2.0).abs() < 1e-9);
    }
}
