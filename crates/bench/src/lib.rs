//! Benchmark harness shared code: experiment drivers that regenerate every
//! table and figure of the paper's evaluation (§IV).
//!
//! The binaries are thin wrappers:
//!
//! * `table1` — dataset properties, total/dynamic power estimation errors
//!   for Vivado / HL-Pow / PowerGear / GCN / GraphSage / GraphConv / GINE,
//!   and the runtime speedup column;
//! * `table2` — the HEC-GNN ablation (w/o opt., w/o e.f., w/o dir.,
//!   w/o hetr., w/o md., sgl., prop.);
//! * `table3` — DSE ADRS at 20/30/40 % sampling budgets with the three
//!   prediction models;
//! * `fig4` — latency/dynamic-power Pareto frontiers for Atax and Mvt
//!   (CSV + ASCII rendering).
//!
//! Every driver accepts an [`EvalConfig`]; `--full` on the binaries raises
//! the scale toward the paper's settings.

pub mod drivers;
pub mod loadgen;
pub mod perf;
pub mod runtime;

pub use drivers::{EvalConfig, EvalContext};
pub use loadgen::{fetch_stats_v2, run_load, server_delta, LoadConfig, LoadReport, ServerDelta};
pub use perf::{PerfConfig, PerfResult};
