//! Regenerates **Table II**: dynamic-power estimation error of the seven
//! HEC-GNN ablation variants (w/o opt., w/o e.f., w/o dir., w/o hetr.,
//! w/o md., sgl., prop.) under leave-one-kernel-out evaluation.
//!
//! ```text
//! cargo run -p powergear-bench --release --bin table2 [-- --full] [--kernels atax,mvt]
//! ```

use pg_util::{mean, Table};
use powergear_bench::drivers::{ablation_all, results_dir, EvalConfig};

const VARIANTS: [&str; 7] = [
    "w/o opt.",
    "w/o e.f.",
    "w/o dir.",
    "w/o hetr.",
    "w/o md.",
    "sgl.",
    "prop.",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("[table2] config hash {:016x}", cfg.hash());
    let results = ablation_all(&cfg);

    let mut header = vec!["Dataset"];
    header.extend(VARIANTS);
    let mut table = Table::new(&header);
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS.len()];
    for kernel in cfg.kernel_names() {
        let mut row = vec![kernel.clone()];
        for (vi, v) in VARIANTS.iter().enumerate() {
            let err = results
                .iter()
                .find(|(name, k, _)| name == v && *k == kernel)
                .map(|(_, _, e)| *e)
                .unwrap_or(f64::NAN);
            per_variant[vi].push(err);
            row.push(Table::fmt_f(err, 2));
        }
        table.row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for col in &per_variant {
        avg_row.push(Table::fmt_f(mean(col), 2));
    }
    table.row(avg_row);

    println!("\nTable II (reproduced): dynamic-power error (%) of HEC-GNN variants\n");
    println!("{table}");
    let out = results_dir().join("table2.txt");
    std::fs::write(&out, format!("{table}")).ok();
    eprintln!("[table2] written to {}", out.display());
}
