//! Regenerates **Fig. 4**: latency vs dynamic-power Pareto frontiers of
//! Atax and Mvt under PowerGear-guided DSE at a 40 % sampling budget —
//! exact frontier, approximate frontier and the design-point cloud.
//!
//! Emits `results/fig4_<kernel>.csv` plus an ASCII rendering.
//!
//! ```text
//! cargo run -p powergear-bench --release --bin fig4 [-- --full]
//! ```

use pg_dse::{run_dse, DseConfig, Point};
use pg_util::CsvWriter;
use powergear_bench::drivers::{evaluate_all, results_dir, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("[fig4] config hash {:016x}", cfg.hash());
    let ctx = evaluate_all(&cfg);

    for kernel in ["atax", "mvt"] {
        let rows = ctx.rows_of(kernel);
        if rows.is_empty() {
            eprintln!("[fig4] no rows for {kernel}, skipping");
            continue;
        }
        let latency: Vec<f64> = rows.iter().map(|r| r.latency).collect();
        let truth: Vec<f64> = rows.iter().map(|r| r.truth_dyn).collect();
        let pg: Vec<f64> = rows.iter().map(|r| r.pg_dyn).collect();
        let out = run_dse(&latency, &truth, &pg, &DseConfig::with_budget(0.4, 7));

        let exact: Vec<usize> = out.exact_frontier.iter().map(|p| p.id).collect();
        let approx: Vec<usize> = out.approx_frontier.iter().map(|p| p.id).collect();
        let mut csv = CsvWriter::new(&[
            "latency_cycles",
            "dynamic_power_w",
            "sampled",
            "exact_frontier",
            "approx_frontier",
        ]);
        for (i, (&l, &p)) in latency.iter().zip(&truth).enumerate() {
            csv.row(&[
                l,
                p,
                out.sampled.contains(&i) as i32 as f64,
                exact.contains(&i) as i32 as f64,
                approx.contains(&i) as i32 as f64,
            ]);
        }
        let path = results_dir().join(format!("fig4_{kernel}.csv"));
        csv.save(&path).expect("write csv");
        eprintln!(
            "[fig4] {kernel}: ADRS {:.4} -> {}",
            out.adrs,
            path.display()
        );

        println!(
            "\nFig. 4 ({kernel}): latency vs dynamic power (ADRS {:.4})",
            out.adrs
        );
        println!("{}", ascii_plot(&latency, &truth, &exact, &approx));
    }
}

/// Crude terminal scatter: `.` design point, `o` exact frontier, `x`
/// approximate frontier, `*` both.
fn ascii_plot(latency: &[f64], power: &[f64], exact: &[usize], approx: &[usize]) -> String {
    const W: usize = 72;
    const H: usize = 22;
    let (lmin, lmax) = min_max(latency);
    let (pmin, pmax) = min_max(power);
    let mut grid = vec![vec![' '; W]; H];
    let place = |grid: &mut Vec<Vec<char>>, l: f64, p: f64, c: char| {
        let x = ((l - lmin) / (lmax - lmin).max(1e-12) * (W - 1) as f64) as usize;
        let y = ((p - pmin) / (pmax - pmin).max(1e-12) * (H - 1) as f64) as usize;
        let row = H - 1 - y;
        let cur = grid[row][x];
        let rank = |ch: char| match ch {
            '*' => 3,
            'x' => 2,
            'o' => 1,
            '.' => 0,
            _ => -1,
        };
        if rank(c) > rank(cur) {
            grid[row][x] = c;
        }
    };
    for (i, (&l, &p)) in latency.iter().zip(power).enumerate() {
        let on_exact = exact.contains(&i);
        let on_approx = approx.contains(&i);
        let c = match (on_exact, on_approx) {
            (true, true) => '*',
            (true, false) => 'o',
            (false, true) => 'x',
            (false, false) => '.',
        };
        place(&mut grid, l, p, c);
    }
    let mut s = String::new();
    s.push_str(&format!("  power [{pmin:.3}, {pmax:.3}] W\n"));
    for row in grid {
        s.push_str("  |");
        s.extend(row);
        s.push('\n');
    }
    s.push_str(&format!(
        "  +{}\n   latency [{lmin:.0}, {lmax:.0}] cycles   (.)point (o)exact (x)approx (*)both\n",
        "-".repeat(W)
    ));
    s
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// A [`Point`] is re-exported so plot tooling can consume the CSV schema.
// reason: the marker exists only to pin the CSV schema type; it is never
// called from the bin itself.
#[allow(dead_code)]
fn _schema_marker(_: Point) {}
