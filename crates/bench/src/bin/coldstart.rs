//! Cold-vs-warm start driver: quantifies what `pg_store` buys a serving
//! process.
//!
//! ```text
//! cargo run --release -p powergear_bench --bin coldstart [-- --full]
//! ```
//!
//! The cold path is what `powergear serve` did before persistence landed:
//! synthesize the design space, label it, train an ensemble, then serve.
//! The warm path is the production story: load the spilled `HlsCache`, load
//! the `.pgm` model artifact, then serve — zero synthesis, zero training
//! epochs. Outputs are asserted bit-identical between the two paths.

use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache, PowerTarget};
use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
use pg_graphcon::PowerGraph;
use pg_store::{ArtifactMeta, ModelArtifact};
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (samples, epochs) = if full { (48, 20) } else { (16, 4) };
    let kernel = polybench::bicg(8);
    let ds_cfg = DatasetConfig {
        size: 8,
        max_samples: samples,
        seed: 1,
        threads: 1,
    };
    let tmp = std::env::temp_dir();
    let cache_path = tmp.join(format!("pg_coldstart_cache_{}.pgstore", std::process::id()));
    let model_path = tmp.join(format!("pg_coldstart_model_{}.pgm", std::process::id()));

    // --- Cold path: synthesize + label + train ---
    let t_cold = Instant::now();
    let cache = HlsCache::new();
    let ds = build_kernel_dataset_cached(&kernel, &ds_cfg, &cache);
    let t_synth = t_cold.elapsed().as_secs_f64();
    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = epochs;
    tc.folds = 2;
    tc.threads = 1;
    let t_train0 = Instant::now();
    let ensemble = train_ensemble(&data, &tc);
    let train_s = t_train0.elapsed().as_secs_f64();
    let cold_s = t_cold.elapsed().as_secs_f64();

    // Persist both layers for the warm path.
    let spilled = cache.save_to(&cache_path).expect("cache spill");
    ModelArtifact {
        meta: ArtifactMeta::now(&ds.kernel, "dynamic"),
        ensembles: vec![("dynamic".into(), ensemble.clone())],
        probe: None,
    }
    .save(&model_path)
    .expect("artifact save");

    // --- Warm path: restore cache + load model ---
    let t_warm = Instant::now();
    let warm_cache = HlsCache::load_from(&cache_path).expect("cache restore");
    let warm_ds = build_kernel_dataset_cached(&kernel, &ds_cfg, &warm_cache);
    let t_replay = t_warm.elapsed().as_secs_f64();
    let t_load0 = Instant::now();
    let loaded = ModelArtifact::load(&model_path).expect("artifact load");
    let warm_ensemble = loaded.ensemble("dynamic").expect("dynamic head");
    let load_s = t_load0.elapsed().as_secs_f64();
    let warm_s = t_warm.elapsed().as_secs_f64();

    assert_eq!(ds, warm_ds, "restored cache must rebuild identical data");
    let graphs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    let cold_bits: Vec<u64> = ensemble
        .predict(&graphs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let warm_bits: Vec<u64> = warm_ensemble
        .predict(&graphs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(cold_bits, warm_bits, "warm path must be bit-identical");

    println!(
        "cold-vs-warm start, `{}` x {} design points:",
        ds.kernel, samples
    );
    println!(
        "  cold: synthesize+label {t_synth:.3}s + train({} epochs) {train_s:.3}s = {cold_s:.3}s",
        epochs
    );
    println!(
        "  warm: cache restore+rebuild {t_replay:.3}s + model load {load_s:.3}s = {warm_s:.3}s"
    );
    println!(
        "  speedup: {:.1}x ({} designs spilled, predictions bit-identical, 0 training epochs warm)",
        cold_s / warm_s.max(1e-9),
        spilled
    );
    std::fs::remove_file(&cache_path).ok();
    std::fs::remove_file(&model_path).ok();
}
