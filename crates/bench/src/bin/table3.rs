//! Regenerates **Table III**: ADRS of prediction-model-guided design space
//! exploration at 20/30/40 % sampling budgets, with Vivado / HL-Pow /
//! PowerGear as the dynamic-power predictor, plus PowerGear's relative
//! gains.
//!
//! ```text
//! cargo run -p powergear-bench --release --bin table3 [-- --full]
//! ```

use pg_dse::{run_dse, DseConfig};
use pg_util::{mean, Table};
use powergear_bench::drivers::{evaluate_all, results_dir, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("[table3] config hash {:016x}", cfg.hash());
    let ctx = evaluate_all(&cfg);

    let budgets = [0.2, 0.3, 0.4];
    let mut table = Table::new(&[
        "Budget",
        "Vivado",
        "HL-Pow",
        "PowerGear",
        "vs Vivado",
        "vs HL-Pow",
    ]);

    for &budget in &budgets {
        let mut viv_scores = Vec::new();
        let mut hlp_scores = Vec::new();
        let mut pg_scores = Vec::new();
        for kernel in cfg.kernel_names() {
            let rows = ctx.rows_of(&kernel);
            if rows.len() < 10 {
                continue;
            }
            let latency: Vec<f64> = rows.iter().map(|r| r.latency).collect();
            let truth: Vec<f64> = rows.iter().map(|r| r.truth_dyn).collect();
            // average over a few seeds to de-noise the sampling loop
            for seed in [3u64, 11, 19] {
                let dcfg = DseConfig::with_budget(budget, seed);
                let viv: Vec<f64> = rows.iter().map(|r| r.viv_dyn).collect();
                let hlp: Vec<f64> = rows.iter().map(|r| r.hlpow_dyn).collect();
                let pg: Vec<f64> = rows.iter().map(|r| r.pg_dyn).collect();
                viv_scores.push(run_dse(&latency, &truth, &viv, &dcfg).adrs);
                hlp_scores.push(run_dse(&latency, &truth, &hlp, &dcfg).adrs);
                pg_scores.push(run_dse(&latency, &truth, &pg, &dcfg).adrs);
            }
        }
        let (viv, hlp, pg) = (mean(&viv_scores), mean(&hlp_scores), mean(&pg_scores));
        let gain = |base: f64| {
            if base > 1e-12 {
                100.0 * (base - pg) / base
            } else {
                0.0
            }
        };
        table.row(vec![
            format!("{:.0}%", budget * 100.0),
            Table::fmt_f(viv, 4),
            Table::fmt_f(hlp, 4),
            Table::fmt_f(pg, 4),
            format!("{:.1}%", gain(viv)),
            format!("{:.1}%", gain(hlp)),
        ]);
    }

    println!("\nTable III (reproduced): ADRS of HLS-based DSE\n");
    println!("{table}");
    let out = results_dir().join("table3.txt");
    std::fs::write(&out, format!("{table}")).ok();
    eprintln!("[table3] written to {}", out.display());
}
