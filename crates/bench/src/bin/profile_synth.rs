//! `profile_synth` — attributes cold dataset-build time across pipeline
//! stages and reports cold-synthesis throughput.
//!
//! The cold path is `HlsFlow::run` (lower → schedule → bind → FSMD →
//! report) followed by graph construction (raw DFG → buffers → merge →
//! trim → finalize), activity tracing and the power oracle. This driver
//! enables the `pg_util::prof` timer scopes baked into those stages,
//! builds one kernel dataset cold, and prints the attribution table plus
//! the `cold_synth_throughput` figure the perf-smoke gate tracks.
//!
//! ```text
//! profile_synth [<kernel>] [--samples N] [--size n] [--threads T]
//!               [--seed s] [--warm]
//! ```
//!
//! * `<kernel>`     Polybench kernel name (default `gemm`)
//! * `--samples N`  design points (default 96; paper scale is 500)
//! * `--size n`     problem size (default 12)
//! * `--threads T`  worker threads (default 1 — per-stage attribution is
//!                  cleanest single-threaded; wall time still reported)
//! * `--seed s`     sampling seed (default 1)
//! * `--warm`       additionally time a warm rebuild over the same cache
//!
//! Example (the reference measurement of the dataset-scale work):
//!
//! ```text
//! cargo run --release -p powergear_bench --bin profile_synth -- gemm --samples 96
//! ```

use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache};
use pg_util::prof;
use std::process::ExitCode;
use std::time::Instant;

fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("flag `{flag}` expects a value")),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`")),
        },
    }
}

/// The kernel positional: the first token that is neither a flag nor a
/// flag's value.
fn kernel_positional(args: &[String]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--warm" {
            i += 1;
        } else if a.starts_with("--") {
            i += 2; // value flag: skip its argument too
        } else {
            return Some(a.clone());
        }
    }
    None
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel_name = kernel_positional(&args).unwrap_or_else(|| "gemm".into());
    let cfg = DatasetConfig {
        size: arg_value(&args, "--size")?.unwrap_or(12),
        max_samples: arg_value(&args, "--samples")?.unwrap_or(96),
        seed: arg_value(&args, "--seed")?.unwrap_or(1),
        threads: arg_value(&args, "--threads")?.unwrap_or(1),
    };
    let warm = args.iter().any(|a| a == "--warm");
    let kernel = polybench::by_name(&kernel_name, cfg.size)
        .ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?;

    eprintln!(
        "[profile] cold build: {} x {} design points (size {}, {} thread(s))",
        kernel.name, cfg.max_samples, cfg.size, cfg.threads
    );
    prof::set_enabled(true);
    prof::reset();
    let cache = HlsCache::new();
    let t = Instant::now();
    let ds = build_kernel_dataset_cached(&kernel, &cfg, &cache);
    let cold_s = t.elapsed().as_secs_f64();
    prof::set_enabled(false);

    let designs = cache.misses();
    println!("{}", prof::report(cold_s));
    println!(
        "cold build: {} samples / {} synthesized designs in {:.3}s ({:.1} avg nodes)",
        ds.samples.len(),
        designs,
        cold_s,
        ds.avg_nodes()
    );
    println!(
        "cold_synth_throughput: {:.1} designs/s",
        designs as f64 / cold_s.max(1e-9)
    );

    if warm {
        let t = Instant::now();
        let ds2 = build_kernel_dataset_cached(&kernel, &cfg, &cache);
        let warm_s = t.elapsed().as_secs_f64();
        assert_eq!(ds, ds2, "warm rebuild must be bit-identical");
        println!(
            "warm rebuild: {:.3}s ({:.1}x cold, bit-identical)",
            warm_s,
            cold_s / warm_s.max(1e-9)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
