//! Regenerates **Table I**: dataset properties, total- and dynamic-power
//! estimation errors for every method, and the runtime speedup over the
//! Vivado estimator surrogate.
//!
//! ```text
//! cargo run -p powergear-bench --release --bin table1 [-- --full] [--kernels atax,mvt]
//! ```

use pg_util::{mean, Table};
use powergear_bench::drivers::{evaluate_all, results_dir, EvalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = EvalConfig::from_args(&args);
    eprintln!("[table1] config hash {:016x}", cfg.hash());
    let ctx = evaluate_all(&cfg);

    let mut table = Table::new(&[
        "Dataset",
        "#Samples",
        "Avg.#Nodes",
        "Viv tot%",
        "HLP tot%",
        "PG tot%",
        "GCN dyn%",
        "Sage dyn%",
        "GConv dyn%",
        "GINE dyn%",
        "HLP dyn%",
        "PG dyn%",
        "Speedup",
    ]);

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 11];
    for info in &ctx.info {
        let k = &info.kernel;
        let viv_t = ctx.kernel_mape(k, |r| r.viv_total, |r| r.truth_total);
        let hlp_t = ctx.kernel_mape(k, |r| r.hlpow_total, |r| r.truth_total);
        let pg_t = ctx.kernel_mape(k, |r| r.pg_total, |r| r.truth_total);
        let gcn = ctx.kernel_mape(k, |r| r.gcn_dyn, |r| r.truth_dyn);
        let sage = ctx.kernel_mape(k, |r| r.sage_dyn, |r| r.truth_dyn);
        let gconv = ctx.kernel_mape(k, |r| r.gconv_dyn, |r| r.truth_dyn);
        let gine = ctx.kernel_mape(k, |r| r.gine_dyn, |r| r.truth_dyn);
        let hlp_d = ctx.kernel_mape(k, |r| r.hlpow_dyn, |r| r.truth_dyn);
        let pg_d = ctx.kernel_mape(k, |r| r.pg_dyn, |r| r.truth_dyn);
        let speedup = info.viv_ms / info.pg_ms.max(1e-9);
        let vals = [
            viv_t, hlp_t, pg_t, gcn, sage, gconv, gine, hlp_d, pg_d, speedup,
        ];
        for (c, v) in cols
            .iter_mut()
            .zip(std::iter::once(info.avg_nodes).chain(vals.iter().copied()))
        {
            c.push(v);
        }
        table.row(vec![
            k.clone(),
            info.n_samples.to_string(),
            format!("{:.0}", info.avg_nodes),
            Table::fmt_f(viv_t, 2),
            Table::fmt_f(hlp_t, 2),
            Table::fmt_f(pg_t, 2),
            Table::fmt_f(gcn, 2),
            Table::fmt_f(sage, 2),
            Table::fmt_f(gconv, 2),
            Table::fmt_f(gine, 2),
            Table::fmt_f(hlp_d, 2),
            Table::fmt_f(pg_d, 2),
            format!("{:.2}x", speedup),
        ]);
    }
    let n_avg = mean(
        &ctx.info
            .iter()
            .map(|i| i.n_samples as f64)
            .collect::<Vec<_>>(),
    );
    table.row(vec![
        "Average".into(),
        format!("{n_avg:.0}"),
        format!("{:.0}", mean(&cols[0])),
        Table::fmt_f(mean(&cols[1]), 2),
        Table::fmt_f(mean(&cols[2]), 2),
        Table::fmt_f(mean(&cols[3]), 2),
        Table::fmt_f(mean(&cols[4]), 2),
        Table::fmt_f(mean(&cols[5]), 2),
        Table::fmt_f(mean(&cols[6]), 2),
        Table::fmt_f(mean(&cols[7]), 2),
        Table::fmt_f(mean(&cols[8]), 2),
        Table::fmt_f(mean(&cols[9]), 2),
        format!("{:.2}x", mean(&cols[10])),
    ]);

    println!("\nTable I (reproduced): estimation error (MAPE %) and speedup\n");
    println!("{table}");
    let out = results_dir().join("table1.txt");
    std::fs::write(&out, format!("{table}")).ok();
    eprintln!("[table1] written to {}", out.display());
}
