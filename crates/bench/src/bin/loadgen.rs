//! `loadgen` — socket-level load generator for the `powergear serve`
//! daemon, reporting the latency/throughput numbers `docs/SERVING.md`
//! tunes against.
//!
//! ```text
//! loadgen [--addr <host:port>] [--kernel bicg] [--size 10] [--samples 24]
//!         [--clients 8] [--requests 32] [--graphs 4]
//!         [--batch-deadline-us 500] [--max-batch 32] [--threads T]
//! ```
//!
//! Without `--addr`, loadgen is self-contained: it builds a small
//! dataset, trains a quick ensemble, publishes it to a temporary
//! registry, spawns the daemon in-process on a free port, drives it, and
//! verifies every served prediction is bit-identical to the in-process
//! sequential path. With `--addr` it drives an already-running daemon
//! (no bit-parity check — the remote model is not known here).
//!
//! Output: p50/p95/p99 request latency, sustained graphs/s and
//! requests/s, plus error/mismatch counts. Exits non-zero on any error
//! or bit mismatch.

use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache};
use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
use pg_graphcon::PowerGraph;
use powergear::daemon::{Daemon, DaemonConfig};
use powergear::PowerGear;
use powergear_bench::loadgen::{run_load, LoadConfig, LoadReport};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("flag `{flag}` expects a value")),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`")),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let kernel_name: String = arg_value(args, "--kernel")?.unwrap_or_else(|| "bicg".into());
    let size: usize = arg_value(args, "--size")?.unwrap_or(10);
    let samples: usize = arg_value(args, "--samples")?.unwrap_or(24);
    let cfg = LoadConfig {
        clients: arg_value(args, "--clients")?.unwrap_or(8),
        requests: arg_value(args, "--requests")?.unwrap_or(32),
        graphs_per_request: arg_value(args, "--graphs")?.unwrap_or(4),
    };
    let addr_flag: Option<String> = arg_value(args, "--addr")?;

    let kernel = polybench::by_name(&kernel_name, size)
        .ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?;
    eprintln!(
        "[loadgen] building {samples} design points of `{kernel_name}` (size {size}) \
         for request payloads..."
    );
    let ds_cfg = DatasetConfig {
        size,
        max_samples: samples.max(4),
        seed: 1,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    };
    let ds = build_kernel_dataset_cached(&kernel, &ds_cfg, &HlsCache::new());
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();

    let report = match addr_flag {
        Some(raw) => {
            let addr = resolve(&raw)?;
            eprintln!("[loadgen] driving external daemon at {addr} (no bit-parity check)");
            run_load(addr, &kernel_name, &graphs, None, &cfg)?
        }
        None => drive_self_hosted(args, &ds.kernel, &graphs, &cfg)?,
    };

    print_report(&report, &cfg);
    Ok(report.errors == 0 && report.mismatches == 0)
}

fn resolve(raw: &str) -> Result<SocketAddr, String> {
    raw.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{raw}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{raw}` resolves to no address"))
}

/// Spawns an in-process daemon over a quick-trained model and drives it,
/// checking served bits against the in-process sequential path.
fn drive_self_hosted(
    args: &[String],
    kernel: &str,
    graphs: &[PowerGraph],
    cfg: &LoadConfig,
) -> Result<LoadReport, String> {
    let labeled: Vec<(&PowerGraph, f64)> = graphs
        .iter()
        .zip(std::iter::repeat(1.0))
        .map(|(g, v)| (g, v))
        .collect();
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = 4;
    tc.folds = 2;
    tc.threads = 1;
    eprintln!("[loadgen] training a quick ensemble for the self-hosted daemon...");
    let ensemble = train_ensemble(&labeled, &tc);
    let gear = PowerGear {
        total_model: ensemble.clone(),
        dynamic_model: ensemble,
    };
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let expected = gear.estimate_graphs(&refs);

    let reg_dir = std::env::temp_dir().join(format!("pg_loadgen_{}", std::process::id()));
    let registry = pg_store::ModelRegistry::open(&reg_dir).map_err(|e| e.to_string())?;
    registry
        .publish(
            "loadgen",
            &gear.to_artifact(pg_store::ArtifactMeta::now(kernel, "total+dynamic"), &[], 0),
        )
        .map_err(|e| e.to_string())?;

    let mut dcfg = DaemonConfig::new("127.0.0.1:0");
    dcfg.registry_dir = Some(reg_dir.clone());
    if let Some(us) = arg_value(args, "--batch-deadline-us")? {
        dcfg.batch_deadline = Duration::from_micros(us);
    }
    if let Some(mb) = arg_value(args, "--max-batch")? {
        dcfg.max_batch = mb;
    }
    if let Some(t) = arg_value(args, "--threads")? {
        dcfg.threads = t;
    }
    let daemon = Daemon::bind(dcfg).map_err(|e| e.to_string())?.spawn();
    eprintln!(
        "[loadgen] self-hosted daemon on {} — {} clients x {} requests x {} graphs",
        daemon.addr(),
        cfg.clients,
        cfg.requests,
        cfg.graphs_per_request
    );
    let result = run_load(daemon.addr(), kernel, graphs, Some(&expected), cfg);
    daemon.stop().map_err(|e| e.to_string())?;
    std::fs::remove_dir_all(&reg_dir).ok();
    result
}

fn print_report(r: &LoadReport, cfg: &LoadConfig) {
    println!(
        "requests   : {} ok, {} errors, {} bit mismatches",
        r.latencies.len(),
        r.errors,
        r.mismatches
    );
    println!(
        "latency    : p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        r.percentile(50.0) * 1e3,
        r.percentile(95.0) * 1e3,
        r.percentile(99.0) * 1e3
    );
    println!(
        "throughput : {:.1} graphs/s, {:.1} requests/s over {:.2}s wall \
         ({} clients x {} graphs/request)",
        r.graphs_per_sec(),
        r.requests_per_sec(),
        r.elapsed_s,
        cfg.clients,
        cfg.graphs_per_request
    );
    println!("models     : {:?}", r.models_seen);
}
