//! `loadgen` — socket-level load generator for the `powergear serve`
//! daemon, reporting the latency/throughput numbers `docs/SERVING.md`
//! tunes against.
//!
//! ```text
//! loadgen [--addr <host:port>] [--kernel bicg] [--size 10] [--samples 24]
//!         [--clients 8] [--requests 32] [--graphs 4]
//!         [--batch-deadline-us 500] [--max-batch 32] [--threads T]
//!         [--overhead-check]
//! ```
//!
//! Without `--addr`, loadgen is self-contained: it builds a small
//! dataset, trains a quick ensemble, publishes it to a temporary
//! registry, spawns the daemon in-process on a free port, drives it, and
//! verifies every served prediction is bit-identical to the in-process
//! sequential path. With `--addr` it drives an already-running daemon
//! (no bit-parity check — the remote model is not known here).
//!
//! Output: p50/p95/p99 request latency, sustained graphs/s and
//! requests/s, plus error/mismatch counts. The run is bracketed with
//! `StatsV2` snapshots: server-side request/graph counters are
//! cross-checked against the client tallies (exact in self-hosted mode,
//! advisory against a shared external daemon) and the server's achieved
//! batch-size p50/p95 is printed beside the client latency percentiles.
//! Exits non-zero on any error, bit mismatch, or (self-hosted)
//! server/client counter disagreement.
//!
//! `--overhead-check` (self-hosted only) is the CI parity probe for the
//! metrics layer: the same daemon is driven twice, once with the
//! registry disabled and once enabled, and the run fails if the
//! instrumented throughput falls below half the uninstrumented one (or
//! either pass loses bit parity).

use pg_datasets::{build_kernel_dataset_cached, polybench, DatasetConfig, HlsCache};
use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};
use pg_graphcon::PowerGraph;
use powergear::daemon::{Daemon, DaemonConfig};
use powergear::PowerGear;
use powergear_bench::loadgen::{
    fetch_stats_v2, run_load, server_delta, LoadConfig, LoadReport, ServerDelta,
};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("flag `{flag}` expects a value")),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`")),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let kernel_name: String = arg_value(args, "--kernel")?.unwrap_or_else(|| "bicg".into());
    let size: usize = arg_value(args, "--size")?.unwrap_or(10);
    let samples: usize = arg_value(args, "--samples")?.unwrap_or(24);
    let cfg = LoadConfig {
        clients: arg_value(args, "--clients")?.unwrap_or(8),
        requests: arg_value(args, "--requests")?.unwrap_or(32),
        graphs_per_request: arg_value(args, "--graphs")?.unwrap_or(4),
    };
    let addr_flag: Option<String> = arg_value(args, "--addr")?;

    let kernel = polybench::by_name(&kernel_name, size)
        .ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?;
    eprintln!(
        "[loadgen] building {samples} design points of `{kernel_name}` (size {size}) \
         for request payloads..."
    );
    let ds_cfg = DatasetConfig {
        size,
        max_samples: samples.max(4),
        seed: 1,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    };
    let ds = build_kernel_dataset_cached(&kernel, &ds_cfg, &HlsCache::new());
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();

    if args.iter().any(|a| a == "--overhead-check") {
        if addr_flag.is_some() {
            return Err("--overhead-check needs the self-hosted daemon (drop --addr)".into());
        }
        return overhead_check(args, &ds.kernel, &graphs, &cfg);
    }

    let (report, delta, exact) = match addr_flag {
        Some(raw) => {
            let addr = resolve(&raw)?;
            eprintln!("[loadgen] driving external daemon at {addr} (no bit-parity check)");
            let before = fetch_stats_v2(addr);
            let report = run_load(addr, &kernel_name, &graphs, None, &cfg)?;
            let delta = bracket(before, addr);
            (report, delta, false)
        }
        None => drive_self_hosted(args, &ds.kernel, &graphs, &cfg)?,
    };

    print_report(&report, &cfg, delta.as_ref());
    let counters_ok = match &delta {
        // Self-hosted: the daemon served only this run, so server
        // counters must match the client tallies exactly.
        Some(d) if exact => d.matches_client(&report),
        // External daemon (shared, may serve other traffic) or a
        // pre-StatsV2 server: advisory only.
        _ => true,
    };
    if !counters_ok {
        eprintln!("error: server counters disagree with client tallies (see above)");
    }
    Ok(report.errors == 0 && report.mismatches == 0 && counters_ok)
}

/// Completes a before/after `StatsV2` bracket around a finished run.
fn bracket(
    before: Result<pg_store::StatsV2Response, String>,
    addr: SocketAddr,
) -> Option<ServerDelta> {
    let before = match before {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[loadgen] StatsV2 unavailable ({e}); skipping counter cross-check");
            return None;
        }
    };
    match fetch_stats_v2(addr) {
        Ok(after) => Some(server_delta(&before, &after)),
        Err(e) => {
            eprintln!("[loadgen] StatsV2 re-fetch failed ({e}); skipping counter cross-check");
            None
        }
    }
}

fn resolve(raw: &str) -> Result<SocketAddr, String> {
    raw.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{raw}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{raw}` resolves to no address"))
}

/// A quick-trained model published to a temp registry with an in-process
/// daemon serving it — the self-hosted harness both run modes share.
struct SelfHosted {
    daemon: powergear::daemon::DaemonHandle,
    expected: Vec<(f64, f64)>,
    reg_dir: std::path::PathBuf,
}

impl SelfHosted {
    fn setup(args: &[String], kernel: &str, graphs: &[PowerGraph]) -> Result<Self, String> {
        let labeled: Vec<(&PowerGraph, f64)> = graphs
            .iter()
            .zip(std::iter::repeat(1.0))
            .map(|(g, v)| (g, v))
            .collect();
        let mut tc = TrainConfig::quick(ModelConfig::hec(16));
        tc.epochs = 4;
        tc.folds = 2;
        tc.threads = 1;
        eprintln!("[loadgen] training a quick ensemble for the self-hosted daemon...");
        let ensemble = train_ensemble(&labeled, &tc);
        let gear = PowerGear {
            total_model: ensemble.clone(),
            dynamic_model: ensemble,
        };
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let expected = gear.estimate_graphs(&refs);

        let reg_dir = std::env::temp_dir().join(format!("pg_loadgen_{}", std::process::id()));
        let registry = pg_store::ModelRegistry::open(&reg_dir).map_err(|e| e.to_string())?;
        registry
            .publish(
                "loadgen",
                &gear.to_artifact(pg_store::ArtifactMeta::now(kernel, "total+dynamic"), &[], 0),
            )
            .map_err(|e| e.to_string())?;

        let mut dcfg = DaemonConfig::new("127.0.0.1:0");
        dcfg.registry_dir = Some(reg_dir.clone());
        if let Some(us) = arg_value(args, "--batch-deadline-us")? {
            dcfg.batch_deadline = Duration::from_micros(us);
        }
        if let Some(mb) = arg_value(args, "--max-batch")? {
            dcfg.max_batch = mb;
        }
        if let Some(t) = arg_value(args, "--threads")? {
            dcfg.threads = t;
        }
        let daemon = Daemon::bind(dcfg).map_err(|e| e.to_string())?.spawn();
        Ok(SelfHosted {
            daemon,
            expected,
            reg_dir,
        })
    }

    fn teardown(self) -> Result<(), String> {
        self.daemon.stop().map_err(|e| e.to_string())?;
        std::fs::remove_dir_all(&self.reg_dir).ok();
        Ok(())
    }
}

/// Spawns an in-process daemon over a quick-trained model and drives it,
/// checking served bits against the in-process sequential path.
fn drive_self_hosted(
    args: &[String],
    kernel: &str,
    graphs: &[PowerGraph],
    cfg: &LoadConfig,
) -> Result<(LoadReport, Option<ServerDelta>, bool), String> {
    let host = SelfHosted::setup(args, kernel, graphs)?;
    eprintln!(
        "[loadgen] self-hosted daemon on {} — {} clients x {} requests x {} graphs",
        host.daemon.addr(),
        cfg.clients,
        cfg.requests,
        cfg.graphs_per_request
    );
    let before = fetch_stats_v2(host.daemon.addr());
    let result = run_load(
        host.daemon.addr(),
        kernel,
        graphs,
        Some(&host.expected),
        cfg,
    );
    let delta = bracket(before, host.daemon.addr());
    host.teardown()?;
    result.map(|r| (r, delta, true))
}

/// Instrumented-vs-uninstrumented parity: the same daemon serves the
/// same load twice — registry off, then on — and throughput must not
/// collapse under instrumentation. Bit parity is enforced in both
/// passes, so the comparison can never trade correctness for speed.
fn overhead_check(
    args: &[String],
    kernel: &str,
    graphs: &[PowerGraph],
    cfg: &LoadConfig,
) -> Result<bool, String> {
    let host = SelfHosted::setup(args, kernel, graphs)?;
    let addr = host.daemon.addr();
    eprintln!(
        "[loadgen] overhead check on {addr} — {} clients x {} requests x {} graphs, twice",
        cfg.clients, cfg.requests, cfg.graphs_per_request
    );

    pg_util::metrics::set_enabled(false);
    let off = run_load(addr, kernel, graphs, Some(&host.expected), cfg);
    pg_util::metrics::set_enabled(true);
    let off = match off {
        Ok(r) => r,
        Err(e) => {
            host.teardown()?;
            return Err(e);
        }
    };
    let on = run_load(addr, kernel, graphs, Some(&host.expected), cfg);
    host.teardown()?;
    let on = on?;

    let (off_tput, on_tput) = (off.graphs_per_sec(), on.graphs_per_sec());
    println!(
        "uninstrumented : {off_tput:.1} graphs/s ({} ok, {} errors, {} mismatches)",
        off.latencies.len(),
        off.errors,
        off.mismatches
    );
    println!(
        "instrumented   : {on_tput:.1} graphs/s ({} ok, {} errors, {} mismatches)",
        on.latencies.len(),
        on.errors,
        on.mismatches
    );
    // Generous 2x bound, matching the perf-smoke threshold: socket-level
    // runs jitter, and a real overhead regression shows up far larger.
    let parity_ok = on_tput >= off_tput / 2.0;
    println!(
        "parity         : instrumented/uninstrumented = {:.2} ({})",
        on_tput / off_tput.max(1e-9),
        if parity_ok { "ok" } else { "REGRESSION" }
    );
    if !parity_ok {
        eprintln!("error: instrumentation more than halved serve throughput");
    }
    let clean = off.errors + on.errors == 0 && off.mismatches + on.mismatches == 0;
    Ok(clean && parity_ok)
}

fn print_report(r: &LoadReport, cfg: &LoadConfig, delta: Option<&ServerDelta>) {
    println!(
        "requests   : {} ok, {} errors, {} bit mismatches",
        r.latencies.len(),
        r.errors,
        r.mismatches
    );
    println!(
        "latency    : p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        r.percentile(50.0) * 1e3,
        r.percentile(95.0) * 1e3,
        r.percentile(99.0) * 1e3
    );
    println!(
        "throughput : {:.1} graphs/s, {:.1} requests/s over {:.2}s wall \
         ({} clients x {} graphs/request)",
        r.graphs_per_sec(),
        r.requests_per_sec(),
        r.elapsed_s,
        cfg.clients,
        cfg.graphs_per_request
    );
    println!("models     : {:?}", r.models_seen);
    let Some(d) = delta else {
        println!("server     : StatsV2 unavailable, no counter cross-check");
        return;
    };
    let verdict = if d.matches_client(r) {
        "exact match"
    } else {
        "MISMATCH vs client tallies"
    };
    println!(
        "server     : {} requests, {} graphs, {} batches, {} errors ({verdict})",
        d.requests, d.graphs, d.batches, d.errors
    );
    if let Some(bs) = &d.batch_size {
        let fmt = |b: Option<u64>| match b {
            Some(u64::MAX) => "+inf".into(),
            Some(v) => v.to_string(),
            None => "-".into(),
        };
        println!(
            "batch size : p50<={} p95<={} graphs/batch, mean {:.1} ({} batches observed)",
            fmt(bs.percentile(0.5)),
            fmt(bs.percentile(0.95)),
            bs.mean(),
            bs.count
        );
    }
}
