//! Design-choice ablation driver, two complementary sweeps:
//!
//! * **Flow ablation** (default) — how much does each of §III-A's graph
//!   construction passes — buffer insertion, datapath merging, graph
//!   trimming — contribute to dynamic-power accuracy? For each pass
//!   configuration, datasets are rebuilt with that flow and a single
//!   HEC-GNN is trained/evaluated leave-one-kernel-out on a kernel
//!   subset. The full flow is expected to win; `raw DFG` (everything
//!   off) to lose.
//! * **Architecture zoo** (`--zoo`) — holds the graph flow fixed and
//!   sweeps the model zoo ([`pg_gnn::zoo_variants`]: HEC vs baselines,
//!   pooling modes, depths, attention) through the LOKO harness, ranking
//!   configurations by held-out dynamic-power MAPE.
//!
//! ```text
//! cargo run -p powergear-bench --release --bin graph_ablation [-- --kernels atax,mvt,bicg]
//! cargo run -p powergear-bench --release --bin graph_ablation -- --zoo
//! ```

use pg_activity::{execute, Stimuli};
use pg_datasets::{build_all, polybench, sample_space, DatasetConfig, PowerTarget};
use pg_gnn::{evaluate_model, train_single, zoo_variants, ModelConfig, TrainConfig};
use pg_graphcon::{GraphConfig, GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsFlow};
use pg_powersim::BoardOracle;
use pg_util::{mean, Rng64, Table};
use powergear::eval::{run_loko, EvalConfig};
use powergear_bench::drivers::results_dir;

struct FlowVariant {
    name: &'static str,
    config: GraphConfig,
}

fn variants() -> Vec<FlowVariant> {
    vec![
        FlowVariant {
            name: "raw DFG",
            config: GraphConfig {
                buffer_insertion: false,
                datapath_merging: false,
                graph_trimming: false,
            },
        },
        FlowVariant {
            name: "w/o buffers",
            config: GraphConfig {
                buffer_insertion: false,
                datapath_merging: true,
                graph_trimming: true,
            },
        },
        FlowVariant {
            name: "w/o merging",
            config: GraphConfig {
                buffer_insertion: true,
                datapath_merging: false,
                graph_trimming: true,
            },
        },
        FlowVariant {
            name: "w/o trimming",
            config: GraphConfig {
                buffer_insertion: true,
                datapath_merging: true,
                graph_trimming: false,
            },
        },
        FlowVariant {
            name: "full flow",
            config: GraphConfig::default(),
        },
    ]
}

/// Builds labeled graphs for one kernel under a given flow configuration.
fn build_with_flow(
    kernel_name: &str,
    ds_cfg: &DatasetConfig,
    flow_cfg: GraphConfig,
) -> Vec<(PowerGraph, f64)> {
    let kernel = polybench::by_name(kernel_name, ds_cfg.size).expect("kernel");
    let hls = HlsFlow::new();
    let gf = GraphFlow::with_config(flow_cfg);
    let oracle = BoardOracle::default();
    let stim = Stimuli::for_kernel(&kernel, ds_cfg.seed);
    let baseline = hls
        .run(&kernel, &Directives::new())
        .expect("baseline")
        .report;
    sample_space(&kernel, ds_cfg.max_samples, ds_cfg.seed)
        .iter()
        .map(|d| {
            let design = hls.run(&kernel, d).expect("synthesis");
            let trace = execute(&design, &stim);
            let mut g = gf.build(&design, &trace);
            g.meta = design
                .report
                .metadata_features(&baseline)
                .into_iter()
                .map(|v| v as f32)
                .collect();
            let p = oracle.measure(&design, &trace);
            (g, p.dynamic)
        })
        .collect()
}

/// Zoo comparison: sweep [`zoo_variants`] through the LOKO harness on one
/// shared dataset build and rank configurations by held-out dynamic MAPE.
fn run_zoo(kernels: &[String]) {
    let base = EvalConfig::quick(ModelConfig::hec(16));
    let datasets = build_all(&base.data);
    let mut ranked: Vec<(String, f64, f64, u64)> = Vec::new();
    for v in zoo_variants(16) {
        eprintln!("[graph-ablation] zoo config: {}", v.config.zoo_name());
        let mut cfg = EvalConfig::quick(v.config.clone());
        cfg.kernels = Some(kernels.to_vec());
        let report = run_loko(&datasets, &cfg);
        ranked.push((
            v.config.zoo_name(),
            report.mean_mape(PowerTarget::Dynamic),
            report.mean_mape(PowerTarget::Total),
            report.digest(),
        ));
    }
    // Rank on held-out dynamic-power MAPE; ties broken by name for a
    // deterministic table.
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let mut table = Table::new(&["rank", "config", "dyn MAPE %", "total MAPE %", "digest"]);
    for (i, (name, dyn_mape, total_mape, digest)) in ranked.iter().enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            name.clone(),
            Table::fmt_f(*dyn_mape, 2),
            Table::fmt_f(*total_mape, 2),
            format!("{digest:016x}"),
        ]);
    }
    println!("\nArchitecture-zoo comparison (leave-one-kernel-out, ranked by dynamic MAPE)\n");
    println!("{table}");
    let out = results_dir().join("zoo_ablation.txt");
    std::fs::write(&out, format!("{table}")).ok();
    eprintln!("[graph-ablation] written to {}", out.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernels: Vec<String> = args
        .iter()
        .position(|a| a == "--kernels")
        .and_then(|i| args.get(i + 1))
        .map(|l| l.split(',').map(|s| s.to_string()).collect())
        .unwrap_or_else(|| vec!["atax".into(), "mvt".into(), "bicg".into()]);
    if args.iter().any(|a| a == "--zoo") {
        run_zoo(&kernels);
        return;
    }
    let ds_cfg = DatasetConfig {
        size: 12,
        max_samples: 28,
        seed: 1,
        threads: 2,
    };

    let mut table = Table::new(&["Flow variant", "avg nodes", "dyn MAPE %"]);
    for v in variants() {
        eprintln!("[graph-ablation] variant: {}", v.name);
        // build all kernels' data under this flow
        let per_kernel: Vec<Vec<(PowerGraph, f64)>> = kernels
            .iter()
            .map(|k| build_with_flow(k, &ds_cfg, v.config))
            .collect();
        let mut errs = Vec::new();
        let mut nodes = Vec::new();
        for (ki, _) in kernels.iter().enumerate() {
            // leave kernel ki out
            let mut train: Vec<(&PowerGraph, f64)> = Vec::new();
            for (kj, data) in per_kernel.iter().enumerate() {
                if kj != ki {
                    train.extend(data.iter().map(|(g, t)| (g, *t)));
                }
            }
            let test: Vec<(&PowerGraph, f64)> =
                per_kernel[ki].iter().map(|(g, t)| (g, *t)).collect();
            nodes.extend(test.iter().map(|(g, _)| g.num_nodes as f64));
            let mut order: Vec<usize> = (0..train.len()).collect();
            Rng64::new(9).shuffle(&mut order);
            let nv = (train.len() / 5).max(1);
            let va: Vec<(&PowerGraph, f64)> = order[..nv].iter().map(|&i| train[i]).collect();
            let tr: Vec<(&PowerGraph, f64)> = order[nv..].iter().map(|&i| train[i]).collect();
            let mut tc = TrainConfig::quick(ModelConfig::hec(24));
            tc.epochs = 40;
            tc.lr = 4e-3;
            tc.patience = 12;
            let model = train_single(&tr, &va, &tc, 31);
            errs.push(evaluate_model(&model, &test));
        }
        table.row(vec![
            v.name.to_string(),
            format!("{:.0}", mean(&nodes)),
            Table::fmt_f(mean(&errs), 2),
        ]);
    }
    println!("\nGraph-flow design-choice ablation (dynamic power, leave-one-out)\n");
    println!("{table}");
    let out = results_dir().join("graph_ablation.txt");
    std::fs::write(&out, format!("{table}")).ok();
    eprintln!("[graph-ablation] written to {}", out.display());
}
