//! `perf_smoke` — the CI perf-regression gate.
//!
//! Runs the quick throughput suite ([`powergear_bench::perf`]) and compares
//! every metric against a checked-in baseline:
//!
//! ```text
//! perf_smoke [--quick] [--baseline BENCH_baseline.json] \
//!            [--out perf_results.json] [--threshold 2.0] [--print-baseline]
//! ```
//!
//! * `--quick`          smaller dataset/reps (CI mode; default is standard)
//! * `--baseline <p>`   compare against this JSON (skip check when absent)
//! * `--out <p>`        write measured metrics as JSON (CI artifact)
//! * `--threshold <x>`  allowed slowdown factor (default 2.0 — generous,
//!                      so runner jitter doesn't fail builds)
//! * `--print-baseline` print measured metrics in baseline JSON form
//!
//! Exits non-zero when any metric fell below `baseline / threshold`.

use powergear_bench::perf::{compare, parse_json, run_perf_suite, to_json, PerfConfig};
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        PerfConfig::quick()
    } else {
        PerfConfig::standard()
    };
    let threshold: f64 = arg_value(&args, "--threshold")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    eprintln!(
        "[perf] running suite ({} samples, {} reps, threshold {threshold}x)...",
        cfg.samples, cfg.reps
    );
    let results = run_perf_suite(&cfg);
    println!("{:<32} {:>14}", "metric", "value");
    for r in &results {
        println!("{:<32} {:>14.3}", r.name, r.value);
    }

    if let Some(out) = arg_value(&args, "--out") {
        if let Err(e) = std::fs::write(&out, to_json(&results)) {
            eprintln!("[perf] cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[perf] wrote {out}");
    }
    if args.iter().any(|a| a == "--print-baseline") {
        print!("{}", to_json(&results));
    }

    let Some(baseline_path) = arg_value(&args, "--baseline") else {
        eprintln!("[perf] no --baseline given; measurement only");
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_json(&text),
        Err(e) => {
            eprintln!("[perf] cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.is_empty() {
        eprintln!("[perf] baseline {baseline_path} holds no metrics");
        return ExitCode::FAILURE;
    }

    let regressions = compare(&results, &baseline, threshold);
    if regressions.is_empty() {
        eprintln!(
            "[perf] OK — all {} metrics within {threshold}x of baseline",
            results.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("[perf] REGRESSIONS (allowed slowdown {threshold}x):");
        for r in &regressions {
            eprintln!(
                "  {:<32} baseline {:>12.3} -> current {:>12.3} ({:.2}x slower)",
                r.name,
                r.baseline,
                r.current,
                r.baseline / r.current.max(1e-12)
            );
        }
        ExitCode::FAILURE
    }
}
