//! Experiment drivers shared by the table/figure binaries.
//!
//! [`evaluate_all`] runs the paper's leave-one-kernel-out protocol once:
//! for every held-out kernel it trains PowerGear (HEC-GNN ensemble, total +
//! dynamic), HL-Pow (GBDT, total + dynamic), the calibrated Vivado
//! surrogate, and the four baseline GNNs (dynamic), then records
//! per-test-sample predictions and per-kernel runtime medians. Results are
//! cached as CSV under `results/` keyed by a config hash, so `table1`,
//! `table3` and `fig4` share one evaluation run.

use crate::runtime::measure_runtimes;
use pg_datasets::{
    build_kernel_dataset_cached, leave_one_out, polybench, DatasetConfig, HlsCache, KernelDataset,
    PowerTarget,
};
use pg_gnn::{
    table2_variants, train_ensemble, train_single, Arch, Ensemble, LabelNorm, ModelConfig,
    TrainConfig,
};
use pg_graphcon::PowerGraph;
use pg_hlpow::HlPowModel;
use pg_powersim::VivadoEstimator;
use pg_util::rng::hash64;
use pg_util::{mape, Rng64};
use std::path::{Path, PathBuf};

/// Scale knobs for an evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Dataset construction settings.
    pub dataset: DatasetConfig,
    /// HEC-GNN hidden width.
    pub hidden: usize,
    /// Epochs for total-power models (dynamic gets 1.6×).
    pub epochs: usize,
    /// Ensemble folds.
    pub folds: usize,
    /// Ensemble seeds.
    pub seeds: Vec<u64>,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training threads.
    pub threads: usize,
    /// Vivado calibration subsample size.
    pub vivado_calib: usize,
    /// Designs measured for the runtime column.
    pub runtime_probes: usize,
    /// Restrict to these kernels (None = all nine).
    pub kernels: Option<Vec<String>>,
}

impl EvalConfig {
    /// Default scale for this environment (~tens of minutes on 2 cores).
    pub fn quick() -> Self {
        EvalConfig {
            dataset: DatasetConfig {
                size: 16,
                max_samples: 40,
                seed: 1,
                threads: 2,
            },
            hidden: 32,
            epochs: 48,
            folds: 2,
            seeds: vec![17],
            batch_size: 48,
            lr: 4e-3,
            threads: 2,
            vivado_calib: 80,
            runtime_probes: 5,
            kernels: None,
        }
    }

    /// Larger scale, closer to the paper (hours on 2 cores).
    pub fn full() -> Self {
        EvalConfig {
            dataset: DatasetConfig {
                size: 16,
                max_samples: 200,
                seed: 1,
                threads: 2,
            },
            hidden: 64,
            epochs: 150,
            folds: 5,
            seeds: vec![17, 43],
            batch_size: 96,
            lr: 1e-3,
            threads: 2,
            vivado_calib: 400,
            runtime_probes: 10,
            kernels: None,
        }
    }

    /// Parses `--full` / `--kernels a,b` style CLI arguments.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = if args.iter().any(|a| a == "--full") {
            EvalConfig::full()
        } else {
            EvalConfig::quick()
        };
        if let Some(pos) = args.iter().position(|a| a == "--kernels") {
            if let Some(list) = args.get(pos + 1) {
                cfg.kernels = Some(list.split(',').map(|s| s.to_string()).collect());
            }
        }
        cfg
    }

    /// Stable hash over everything that affects cached results.
    pub fn hash(&self) -> u64 {
        let repr = format!(
            "{:?}|{}|{}|{}|{:?}|{}|{}|{}|{}|{:?}",
            self.dataset,
            self.hidden,
            self.epochs,
            self.folds,
            self.seeds,
            self.batch_size,
            self.lr,
            self.vivado_calib,
            self.runtime_probes,
            self.kernels
        );
        hash64(repr.as_bytes())
    }

    fn train_config(&self, target: PowerTarget, model: ModelConfig) -> TrainConfig {
        let mut cfg = TrainConfig::quick(model);
        cfg.epochs = match target {
            PowerTarget::Dynamic => self.epochs + self.epochs * 3 / 5,
            PowerTarget::Total => self.epochs,
        };
        // Same per-target scheme as `PowerGearConfig::train_config`: Total
        // power is offset-dominated (static leakage), so it standardizes
        // to z-scores + MSE instead of the paper's mean-scaled MAPE — the
        // mean-scale scheme collapses Total predictions to the 1 mW floor
        // at bench epoch budgets.
        cfg.label_norm = match target {
            PowerTarget::Total => LabelNorm::Standardize,
            PowerTarget::Dynamic => LabelNorm::MeanScale,
        };
        cfg.folds = self.folds;
        cfg.seeds = self.seeds.clone();
        cfg.batch_size = self.batch_size;
        cfg.lr = self.lr;
        cfg.threads = self.threads;
        cfg.patience = 8;
        cfg
    }

    /// Kernel names in evaluation order.
    pub fn kernel_names(&self) -> Vec<String> {
        match &self.kernels {
            Some(list) => list.clone(),
            None => polybench::KERNEL_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// One test design's prediction record.
#[derive(Debug, Clone, PartialEq)]
pub struct PredRow {
    /// Held-out kernel.
    pub kernel: String,
    /// Design identifier.
    pub design_id: String,
    /// Latency (cycles).
    pub latency: f64,
    /// Oracle truth.
    pub truth_total: f64,
    /// Oracle truth.
    pub truth_dyn: f64,
    /// PowerGear predictions.
    pub pg_total: f64,
    /// PowerGear predictions.
    pub pg_dyn: f64,
    /// HL-Pow predictions.
    pub hlpow_total: f64,
    /// HL-Pow predictions.
    pub hlpow_dyn: f64,
    /// Calibrated Vivado surrogate.
    pub viv_total: f64,
    /// Calibrated Vivado surrogate.
    pub viv_dyn: f64,
    /// Baseline GNN dynamic predictions.
    pub gcn_dyn: f64,
    /// Baseline GNN dynamic predictions.
    pub sage_dyn: f64,
    /// Baseline GNN dynamic predictions.
    pub gconv_dyn: f64,
    /// Baseline GNN dynamic predictions.
    pub gine_dyn: f64,
}

/// Per-kernel aggregate info.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Kernel name.
    pub kernel: String,
    /// Samples in the dataset.
    pub n_samples: usize,
    /// Mean graph node count.
    pub avg_nodes: f64,
    /// Median PowerGear inference flow time (ms).
    pub pg_ms: f64,
    /// Median Vivado estimation flow time (ms).
    pub viv_ms: f64,
}

/// A complete cached evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalContext {
    /// Per-sample predictions for every held-out kernel.
    pub rows: Vec<PredRow>,
    /// Per-kernel dataset/runtime info.
    pub info: Vec<KernelInfo>,
}

impl EvalContext {
    /// Rows of one kernel.
    pub fn rows_of(&self, kernel: &str) -> Vec<&PredRow> {
        self.rows.iter().filter(|r| r.kernel == kernel).collect()
    }

    /// MAPE of a predictor column on one kernel.
    pub fn kernel_mape(
        &self,
        kernel: &str,
        pred: impl Fn(&PredRow) -> f64,
        truth: impl Fn(&PredRow) -> f64,
    ) -> f64 {
        let rows = self.rows_of(kernel);
        let p: Vec<f64> = rows.iter().map(|r| pred(r)).collect();
        let t: Vec<f64> = rows.iter().map(|r| truth(r)).collect();
        mape(&p, &t)
    }
}

/// Directory used for cached results and figure data.
pub fn results_dir() -> PathBuf {
    let p = PathBuf::from("results");
    std::fs::create_dir_all(&p).ok();
    p
}

fn cache_path(cfg: &EvalConfig) -> PathBuf {
    results_dir().join(format!("eval_{:016x}.csv", cfg.hash()))
}

/// Builds the datasets for the configured kernels (fresh HLS cache).
pub fn build_datasets(cfg: &EvalConfig) -> Vec<KernelDataset> {
    build_datasets_cached(cfg, &HlsCache::new())
}

/// Builds the datasets for the configured kernels through a shared
/// [`HlsCache`], so later pipeline stages (surrogate calibration, runtime
/// probes) reuse the synthesized designs instead of re-running HLS.
pub fn build_datasets_cached(cfg: &EvalConfig, hls: &HlsCache) -> Vec<KernelDataset> {
    let names = cfg.kernel_names();
    polybench::polybench(cfg.dataset.size)
        .iter()
        .filter(|k| names.contains(&k.name))
        .map(|k| {
            eprintln!("[dataset] building {} ...", k.name);
            build_kernel_dataset_cached(k, &cfg.dataset, hls)
        })
        .collect()
}

/// Runs (or loads) the full leave-one-out evaluation.
pub fn evaluate_all(cfg: &EvalConfig) -> EvalContext {
    let path = cache_path(cfg);
    if let Some(ctx) = load_cache(&path) {
        eprintln!("[eval] loaded cached results from {}", path.display());
        return ctx;
    }
    let hls = HlsCache::new();
    let datasets = build_datasets_cached(cfg, &hls);
    let mut ctx = EvalContext::default();

    for held_out in cfg.kernel_names() {
        eprintln!("[eval] held-out kernel: {held_out}");
        let split = leave_one_out(&datasets, &held_out);
        let train_total = split.train_labeled(PowerTarget::Total);
        let train_dyn = split.train_labeled(PowerTarget::Dynamic);
        let test_graphs: Vec<&PowerGraph> = split.test.iter().map(|s| &s.graph).collect();

        // PowerGear ensembles.
        eprintln!("[eval]   training PowerGear (total)...");
        let pg_total_model = train_ensemble(
            &train_total,
            &cfg.train_config(PowerTarget::Total, ModelConfig::hec(cfg.hidden)),
        );
        eprintln!("[eval]   training PowerGear (dynamic)...");
        let pg_dyn_model = train_ensemble(
            &train_dyn,
            &cfg.train_config(PowerTarget::Dynamic, ModelConfig::hec(cfg.hidden)),
        );
        // batched multi-core serving; bit-identical to the sequential path
        let pg_total = pg_total_model.engine().predict(&test_graphs);
        let pg_dyn = pg_dyn_model.engine().predict(&test_graphs);

        // HL-Pow.
        eprintln!("[eval]   training HL-Pow...");
        let hl_total = HlPowModel::train(&train_total, 11);
        let hl_dyn = HlPowModel::train(&train_dyn, 13);
        let hlpow_total = hl_total.predict_batch(&test_graphs);
        let hlpow_dyn = hl_dyn.predict_batch(&test_graphs);

        // Vivado surrogate: calibrate on a training subsample.
        eprintln!("[eval]   calibrating Vivado surrogate...");
        let (viv_total, viv_dyn) = vivado_predictions(cfg, &split, &hls);

        // Baseline GNNs (dynamic power).
        let mut baseline_preds = Vec::new();
        for arch in [Arch::Gcn, Arch::Sage, Arch::GraphConv, Arch::Gine] {
            eprintln!("[eval]   training baseline {arch:?}...");
            let (tr, va) = holdout_split(&train_dyn, 0.2, 23);
            let mut bc = cfg.train_config(
                PowerTarget::Dynamic,
                ModelConfig::baseline(arch, cfg.hidden),
            );
            bc.epochs = bc.epochs.min(56);
            bc.folds = 1; // single model
            let model = train_single(&tr, &va, &bc, 29);
            baseline_preds.push(model.predict(&test_graphs));
        }

        for (i, s) in split.test.iter().enumerate() {
            ctx.rows.push(PredRow {
                kernel: held_out.clone(),
                design_id: s.design_id.clone(),
                latency: s.latency as f64,
                truth_total: s.power.total,
                truth_dyn: s.power.dynamic,
                pg_total: pg_total[i],
                pg_dyn: pg_dyn[i],
                hlpow_total: hlpow_total[i],
                hlpow_dyn: hlpow_dyn[i],
                viv_total: viv_total[i],
                viv_dyn: viv_dyn[i],
                gcn_dyn: baseline_preds[0][i],
                sage_dyn: baseline_preds[1][i],
                gconv_dyn: baseline_preds[2][i],
                gine_dyn: baseline_preds[3][i],
            });
        }

        // Runtime probes.
        let ds = datasets
            .iter()
            .find(|d| d.kernel == held_out)
            .expect("dataset present");
        let (pg_ms, viv_ms) = measure_runtimes(
            ds,
            &pg_dyn_model,
            cfg.runtime_probes,
            cfg.dataset.size,
            &hls,
        );
        ctx.info.push(KernelInfo {
            kernel: held_out.clone(),
            n_samples: ds.samples.len(),
            avg_nodes: ds.avg_nodes(),
            pg_ms,
            viv_ms,
        });
    }

    save_cache(&path, &ctx);
    eprintln!("[eval] cached results to {}", path.display());
    ctx
}

/// Calibrated Vivado surrogate predictions for the test samples. Designs
/// are resynthesized through the shared HLS cache, which already holds
/// every design point from the dataset build.
fn vivado_predictions(
    cfg: &EvalConfig,
    split: &pg_datasets::LooSplit<'_>,
    hls: &HlsCache,
) -> (Vec<f64>, Vec<f64>) {
    let mut est = VivadoEstimator::new();
    // calibration pairs from a deterministic training subsample
    let mut rng = Rng64::new(101);
    let idx = rng.sample_indices(split.train.len(), cfg.vivado_calib.min(split.train.len()));
    let mut pairs = Vec::new();
    for &i in &idx {
        let s = split.train[i];
        let kernel = polybench::by_name(&s.kernel, cfg.dataset.size).expect("kernel exists");
        let design = hls.run(&kernel, &s.directives).expect("resynthesis");
        let raw = est.estimate_raw(&design);
        pairs.push((raw.total, s.power.total));
    }
    est.calibrate(&pairs);
    let mut totals = Vec::new();
    let mut dyns = Vec::new();
    for s in &split.test {
        let kernel = polybench::by_name(&s.kernel, cfg.dataset.size).expect("kernel exists");
        let design = hls.run(&kernel, &s.directives).expect("resynthesis");
        let e = est.estimate(&design);
        totals.push(e.total);
        dyns.push(e.dynamic);
    }
    (totals, dyns)
}

/// Deterministic holdout split of labeled data.
pub fn holdout_split<'a>(
    data: &[(&'a PowerGraph, f64)],
    val_frac: f64,
    seed: u64,
) -> (Vec<(&'a PowerGraph, f64)>, Vec<(&'a PowerGraph, f64)>) {
    let mut order: Vec<usize> = (0..data.len()).collect();
    Rng64::new(seed).shuffle(&mut order);
    let n_val = ((data.len() as f64 * val_frac) as usize).max(1);
    let (val_idx, tr_idx) = order.split_at(n_val);
    (
        tr_idx.iter().map(|&i| data[i]).collect(),
        val_idx.iter().map(|&i| data[i]).collect(),
    )
}

/// Ablation results: per (variant, kernel) dynamic-power MAPE.
pub fn ablation_all(cfg: &EvalConfig) -> Vec<(String, String, f64)> {
    let path = results_dir().join(format!("ablation_{:016x}.csv", cfg.hash()));
    if let Ok(text) = std::fs::read_to_string(&path) {
        let mut out = Vec::new();
        for line in text.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            if f.len() == 3 {
                if let Ok(v) = f[2].parse::<f64>() {
                    out.push((f[0].to_string(), f[1].to_string(), v));
                }
            }
        }
        if !out.is_empty() {
            eprintln!("[ablation] loaded cache {}", path.display());
            return out;
        }
    }
    let datasets = build_datasets(cfg);
    let mut out = Vec::new();
    for held_out in cfg.kernel_names() {
        eprintln!("[ablation] held-out kernel: {held_out}");
        let split = leave_one_out(&datasets, &held_out);
        let train_dyn = split.train_labeled(PowerTarget::Dynamic);
        let test_dyn = split.test_labeled(PowerTarget::Dynamic);
        for variant in table2_variants(cfg.hidden) {
            eprintln!("[ablation]   variant {}", variant.name);
            let err = if variant.ensemble {
                let tc = cfg.train_config(PowerTarget::Dynamic, variant.config.clone());
                let ens = train_ensemble(&train_dyn, &tc);
                ens.evaluate(&test_dyn)
            } else {
                let (tr, va) = holdout_split(&train_dyn, 0.2, 37);
                let tc = cfg.train_config(PowerTarget::Dynamic, variant.config.clone());
                let model = train_single(&tr, &va, &tc, 41);
                pg_gnn::evaluate_model(&model, &test_dyn)
            };
            out.push((variant.name.to_string(), held_out.clone(), err));
        }
    }
    let mut text = String::from("variant,kernel,mape\n");
    for (v, k, e) in &out {
        text.push_str(&format!("{v},{k},{e}\n"));
    }
    std::fs::write(&path, text).ok();
    out
}

/// Trains a dynamic-power PowerGear ensemble for one held-out kernel
/// (helper for DSE binaries that need the model itself).
pub fn train_pg_dynamic(cfg: &EvalConfig, datasets: &[KernelDataset], held_out: &str) -> Ensemble {
    let split = leave_one_out(datasets, held_out);
    let train_dyn = split.train_labeled(PowerTarget::Dynamic);
    train_ensemble(
        &train_dyn,
        &cfg.train_config(PowerTarget::Dynamic, ModelConfig::hec(cfg.hidden)),
    )
}

// ---- CSV cache ----------------------------------------------------------

fn save_cache(path: &Path, ctx: &EvalContext) {
    let mut text = String::from(
        "kernel,design_id,latency,truth_total,truth_dyn,pg_total,pg_dyn,hlpow_total,hlpow_dyn,viv_total,viv_dyn,gcn_dyn,sage_dyn,gconv_dyn,gine_dyn\n",
    );
    for r in &ctx.rows {
        text.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.kernel,
            r.design_id.replace(',', ";"),
            r.latency,
            r.truth_total,
            r.truth_dyn,
            r.pg_total,
            r.pg_dyn,
            r.hlpow_total,
            r.hlpow_dyn,
            r.viv_total,
            r.viv_dyn,
            r.gcn_dyn,
            r.sage_dyn,
            r.gconv_dyn,
            r.gine_dyn
        ));
    }
    text.push_str("#info,kernel,n_samples,avg_nodes,pg_ms,viv_ms\n");
    for i in &ctx.info {
        text.push_str(&format!(
            "#info,{},{},{},{},{}\n",
            i.kernel, i.n_samples, i.avg_nodes, i.pg_ms, i.viv_ms
        ));
    }
    std::fs::write(path, text).ok();
}

fn load_cache(path: &Path) -> Option<EvalContext> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut ctx = EvalContext::default();
    for line in text.lines().skip(1) {
        if let Some(rest) = line.strip_prefix("#info,") {
            let f: Vec<&str> = rest.split(',').collect();
            // silently skip the section header and malformed lines
            if f.len() == 5 {
                if let (Ok(n), Ok(a), Ok(p), Ok(v)) =
                    (f[1].parse(), f[2].parse(), f[3].parse(), f[4].parse())
                {
                    ctx.info.push(KernelInfo {
                        kernel: f[0].to_string(),
                        n_samples: n,
                        avg_nodes: a,
                        pg_ms: p,
                        viv_ms: v,
                    });
                }
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 15 {
            continue;
        }
        ctx.rows.push(PredRow {
            kernel: f[0].to_string(),
            design_id: f[1].to_string(),
            latency: f[2].parse().ok()?,
            truth_total: f[3].parse().ok()?,
            truth_dyn: f[4].parse().ok()?,
            pg_total: f[5].parse().ok()?,
            pg_dyn: f[6].parse().ok()?,
            hlpow_total: f[7].parse().ok()?,
            hlpow_dyn: f[8].parse().ok()?,
            viv_total: f[9].parse().ok()?,
            viv_dyn: f[10].parse().ok()?,
            gcn_dyn: f[11].parse().ok()?,
            sage_dyn: f[12].parse().ok()?,
            gconv_dyn: f[13].parse().ok()?,
            gine_dyn: f[14].parse().ok()?,
        });
    }
    if ctx.rows.is_empty() {
        None
    } else {
        Some(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_total_standardizes_and_stays_nondegenerate() {
        let cfg = EvalConfig::quick();
        assert_eq!(
            cfg.train_config(PowerTarget::Total, ModelConfig::hec(8))
                .label_norm,
            LabelNorm::Standardize,
            "bench Total columns must use the standardized label scheme"
        );
        assert_eq!(
            cfg.train_config(PowerTarget::Dynamic, ModelConfig::hec(8))
                .label_norm,
            LabelNorm::MeanScale,
            "Dynamic keeps the paper's mean-scaled MAPE scheme"
        );

        // End-to-end: a tiny Total-power ensemble trained through the
        // bench config must produce finite, non-collapsed predictions
        // (the old mean-scale scheme drove Total to the 1 mW floor —
        // ~99% error — at bench epoch budgets).
        let ds = pg_datasets::build_kernel_dataset(
            &pg_datasets::polybench::mvt(6),
            &pg_datasets::DatasetConfig::tiny(),
        );
        let data = ds.labeled(PowerTarget::Total);
        let mut small = EvalConfig::quick();
        small.hidden = 8;
        small.epochs = 10;
        small.folds = 2;
        small.seeds = vec![17];
        small.threads = 1;
        let ens = train_ensemble(
            &data,
            &small.train_config(PowerTarget::Total, ModelConfig::hec(8)),
        );
        let err = ens.evaluate(&data);
        assert!(err.is_finite(), "bench Total error must be finite: {err}");
        assert!(err < 90.0, "bench Total error degenerate: {err}% MAPE");
        let graphs: Vec<&pg_graphcon::PowerGraph> = data.iter().map(|(g, _)| *g).collect();
        let preds = ens.predict(&graphs);
        let mean_truth = data.iter().map(|(_, t)| *t).sum::<f64>() / data.len() as f64;
        let mean_pred = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(preds.iter().all(|p| p.is_finite()));
        assert!(
            mean_pred > 0.2 * mean_truth,
            "Total predictions collapsed: mean {mean_pred} vs truth {mean_truth}"
        );
    }

    #[test]
    fn config_hash_changes_with_scale() {
        let a = EvalConfig::quick();
        let mut b = EvalConfig::quick();
        b.hidden = 64;
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), EvalConfig::quick().hash());
    }

    #[test]
    fn from_args_parses_flags() {
        let cfg = EvalConfig::from_args(&[
            "--full".to_string(),
            "--kernels".to_string(),
            "atax,mvt".to_string(),
        ]);
        assert_eq!(
            cfg.dataset.max_samples,
            EvalConfig::full().dataset.max_samples
        );
        assert_eq!(cfg.kernel_names(), vec!["atax", "mvt"]);
    }

    #[test]
    fn cache_roundtrip() {
        let ctx = EvalContext {
            rows: vec![PredRow {
                kernel: "atax".into(),
                design_id: "d1".into(),
                latency: 100.0,
                truth_total: 0.5,
                truth_dyn: 0.2,
                pg_total: 0.51,
                pg_dyn: 0.21,
                hlpow_total: 0.52,
                hlpow_dyn: 0.22,
                viv_total: 0.6,
                viv_dyn: 0.3,
                gcn_dyn: 0.25,
                sage_dyn: 0.24,
                gconv_dyn: 0.23,
                gine_dyn: 0.26,
            }],
            info: vec![KernelInfo {
                kernel: "atax".into(),
                n_samples: 64,
                avg_nodes: 120.0,
                pg_ms: 4.0,
                viv_ms: 16.0,
            }],
        };
        let path = std::env::temp_dir().join("pg_cache_test.csv");
        save_cache(&path, &ctx);
        let loaded = load_cache(&path).expect("cache loads");
        assert_eq!(loaded, ctx);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn holdout_split_partitions() {
        let graphs: Vec<PowerGraph> = (0..10)
            .map(|i| PowerGraph {
                num_nodes: 1,
                node_feats: vec![0.0; PowerGraph::NODE_FEATS],
                design_id: format!("{i}"),
                ..PowerGraph::default()
            })
            .collect();
        let data: Vec<(&PowerGraph, f64)> = graphs.iter().map(|g| (g, 1.0)).collect();
        let (tr, va) = holdout_split(&data, 0.2, 1);
        assert_eq!(tr.len(), 8);
        assert_eq!(va.len(), 2);
    }
}
