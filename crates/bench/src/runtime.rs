//! Runtime measurement for Table I's speedup column.
//!
//! The paper reports the turnaround speedup of the PowerGear estimation
//! flow over the Vivado power-estimation process (1.47–10.81×, 4.06× on
//! average). Here:
//!
//! * **PowerGear flow** = activity tracing + graph construction + HEC-GNN
//!   ensemble inference (HLS itself is common to both flows and excluded);
//! * **Vivado flow** = the surrogate's netlist synthesis + placement +
//!   gate-level expansion + vector-less propagation + power walk — the
//!   post-HLS work the real tool performs.

use pg_activity::{execute, Stimuli};
use pg_datasets::{polybench, HlsCache, KernelDataset};
use pg_gnn::Ensemble;
use pg_graphcon::GraphFlow;
use pg_powersim::VivadoEstimator;
use pg_util::median;
use std::time::Instant;

/// Measures median per-design runtimes (ms) for both flows over up to
/// `probes` designs of `ds`; returns `(powergear_ms, vivado_ms)`.
///
/// Probed designs are resynthesized through `cache` — when the caller
/// shares the cache that built the dataset, resynthesis is a pure lookup
/// (HLS is common to both flows and excluded from the timings either way).
pub fn measure_runtimes(
    ds: &KernelDataset,
    pg_model: &Ensemble,
    probes: usize,
    size: usize,
    cache: &HlsCache,
) -> (f64, f64) {
    let kernel = polybench::by_name(&ds.kernel, size).expect("kernel exists");
    let stim = Stimuli::for_kernel(&kernel, 1);
    let est = VivadoEstimator::new();
    let gf = GraphFlow::new();
    let engine = pg_model.engine();

    let mut pg_times = Vec::new();
    let mut viv_times = Vec::new();
    let step = (ds.samples.len() / probes.max(1)).max(1);
    for s in ds.samples.iter().step_by(step).take(probes) {
        let design = cache.run(&kernel, &s.directives).expect("resynthesis");

        let t0 = Instant::now();
        let trace = execute(&design, &stim);
        let mut graph = gf.build(&design, &trace);
        graph.meta = design
            .report
            .metadata_features(&ds.baseline)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let _pred = engine.predict(&[&graph]);
        pg_times.push(t0.elapsed().as_secs_f64() * 1e3);

        let t1 = Instant::now();
        let _est = est.estimate_raw(&design);
        viv_times.push(t1.elapsed().as_secs_f64() * 1e3);
    }
    (median(&pg_times), median(&viv_times))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_datasets::{build_kernel_dataset, DatasetConfig, PowerTarget};
    use pg_gnn::{train_ensemble, ModelConfig, TrainConfig};

    #[test]
    fn measures_positive_times() {
        let kernel = polybench::mvt(6);
        let ds = build_kernel_dataset(&kernel, &DatasetConfig::tiny());
        let data = ds.labeled(PowerTarget::Dynamic);
        let mut tc = TrainConfig::quick(ModelConfig::hec(8));
        tc.epochs = 2;
        tc.folds = 2;
        tc.threads = 1;
        let model = train_ensemble(&data, &tc);
        let cache = HlsCache::new();
        let (pg_ms, viv_ms) = measure_runtimes(&ds, &model, 3, 6, &cache);
        assert!(pg_ms > 0.0);
        assert!(viv_ms > 0.0);
        assert!(!cache.is_empty(), "probes must go through the cache");
    }
}
