//! Perf-smoke suite: quick throughput measurements compared against a
//! checked-in baseline, so CI catches performance regressions.
//!
//! The suite builds a small dataset (through the shared [`HlsCache`]),
//! trains a quick ensemble, and measures a handful of throughput metrics
//! (higher is always better):
//!
//! * `seq_graphs_per_sec` — sequential [`pg_gnn::Ensemble::predict`];
//! * `engine_t1_graphs_per_sec` — [`pg_gnn::InferenceEngine`], one worker;
//! * `engine_mt_graphs_per_sec` — [`pg_gnn::InferenceEngine`], one worker
//!   per core;
//! * `hls_cache_replay_speedup` — synthesizing the whole design space
//!   against a warm cache versus cold (pure memoization win; collapses to
//!   ~1 if the cache ever stops hitting);
//! * `hls_designs_per_sec` — cold HLS synthesis rate (synthesis only);
//! * `cold_synth_throughput` — end-to-end cold dataset-build rate in
//!   design points per second (synthesis + activity trace + graph
//!   construction + oracle labels, on a fresh cache, single thread): the
//!   figure that decides whether paper-scale (500 points/kernel) dataset
//!   generation is affordable, and the regression gate for the cold-path
//!   optimizations (shared work graph, pre-resolved interpreter,
//!   single-pass trim, interned port keys);
//! * `train_throughput` — training rate in graph-epochs per second
//!   (`samples × epochs × ensemble members / wall-clock`): the regression
//!   gate for the tiled `pg_tensor` kernels, fused tape ops, and
//!   arena-reusing deterministic training loop;
//! * `warm_start_speedup` — training the ensemble from scratch versus
//!   loading the saved `pg_store` artifact from disk (the train-once /
//!   serve-forever win; collapses toward 1 if artifact loading ever gets
//!   as expensive as training);
//! * `serve_throughput` — graphs/s sustained by the `powergear serve`
//!   daemon over real TCP sockets under concurrent PGRPC clients
//!   ([`crate::loadgen`]), with every served prediction checked
//!   bit-identical to the in-process sequential path;
//! * `metrics_overhead` — hot-path operations/s of a resolved
//!   `pg_util::metrics` counter + histogram pair (one `inc` + one
//!   `observe` per op): the regression gate for the claim that
//!   instrumenting the daemon is effectively free.
//!
//! Results serialize to a tiny hand-rolled JSON file (`{"metrics": {...}}`
//! — the workspace has no serde); [`compare`] flags any metric that fell
//! below `baseline / threshold`. The baseline is generous (threshold 2x by
//! default) so only real regressions — not runner jitter — fail CI.

use pg_datasets::{
    build_kernel_dataset_cached, polybench, sample_space, DatasetConfig, HlsCache, PowerTarget,
};
use pg_gnn::{train_ensemble, InferenceEngine, ModelConfig, ServeConfig, TrainConfig};
use pg_graphcon::PowerGraph;
use std::collections::BTreeMap;
use std::time::Instant;

/// One named throughput measurement (higher = better).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfResult {
    /// Metric name (stable across runs; keys the baseline).
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Scale knobs for the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfConfig {
    /// Design points in the measurement dataset.
    pub samples: usize,
    /// Training epochs for the throwaway ensemble.
    pub epochs: usize,
    /// Timed prediction repetitions (median-of).
    pub reps: usize,
}

impl PerfConfig {
    /// CI quick mode: a couple of seconds end to end.
    pub fn quick() -> Self {
        PerfConfig {
            samples: 24,
            epochs: 4,
            reps: 5,
        }
    }

    /// Local mode: more samples and repetitions for stabler numbers.
    pub fn standard() -> Self {
        PerfConfig {
            samples: 48,
            epochs: 8,
            reps: 9,
        }
    }
}

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// Runs the suite and returns every metric.
///
/// # Panics
///
/// Panics if the batched engine output ever diverges bit-wise from the
/// sequential path — a perf run must never trade correctness.
pub fn run_perf_suite(cfg: &PerfConfig) -> Vec<PerfResult> {
    let kernel = polybench::bicg(10);
    let ds_cfg = DatasetConfig {
        size: 10,
        max_samples: cfg.samples,
        seed: 1,
        threads: 1,
    };

    // Cold synthesis of the whole design space, then a warm replay: the
    // replay is pure cache lookups, so its speedup collapses toward 1 if
    // the memoization ever breaks.
    let cache = HlsCache::new();
    let configs = sample_space(&kernel, ds_cfg.max_samples, ds_cfg.seed);
    let t_cold = Instant::now();
    for d in &configs {
        std::hint::black_box(cache.run(&kernel, d).expect("cold synthesis"));
    }
    let cold_s = t_cold.elapsed().as_secs_f64();
    let designs = cache.misses().max(1);
    let t_warm = Instant::now();
    for d in &configs {
        std::hint::black_box(cache.run(&kernel, d).expect("warm replay"));
    }
    let warm_s = t_warm.elapsed().as_secs_f64();

    // End-to-end cold dataset build (synthesis + trace + graph + labels)
    // on a fresh cache, single-threaded: the paper-scale generation rate.
    let fresh = HlsCache::new();
    let t_build = Instant::now();
    let ds_cold = build_kernel_dataset_cached(&kernel, &ds_cfg, &fresh);
    let build_s = t_build.elapsed().as_secs_f64();
    let cold_build_designs = fresh.misses().max(1);

    // Dataset built over the already-warm cache; it must be bit-identical
    // to the cold build (correctness gate for the perf numbers below).
    let ds = build_kernel_dataset_cached(&kernel, &ds_cfg, &cache);
    assert_eq!(ds_cold, ds, "cold and warm dataset builds must agree");

    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(16));
    tc.epochs = cfg.epochs;
    tc.folds = 2;
    tc.threads = 1;
    let t_train = Instant::now();
    let ensemble = train_ensemble(&data, &tc);
    let train_s = t_train.elapsed().as_secs_f64();
    let members = tc.folds * tc.seeds.len();
    let graph_epochs = (data.len() * tc.epochs * members) as f64;

    // Warm-start probe: persist the trained ensemble and reload it from
    // disk — the cross-process replacement for retraining at serve time.
    let artifact = pg_store::ModelArtifact {
        meta: pg_store::ArtifactMeta::now(&ds.kernel, "dynamic"),
        ensembles: vec![("dynamic".into(), ensemble.clone())],
        probe: None,
    };
    let spill = std::env::temp_dir().join(format!("pg_perf_smoke_{}.pgm", std::process::id()));
    artifact.save(&spill).expect("artifact save");
    let load_s = median_secs(cfg.reps, || {
        std::hint::black_box(pg_store::ModelArtifact::load(&spill).expect("artifact load"));
    });
    let loaded = pg_store::ModelArtifact::load(&spill).expect("artifact load");
    std::fs::remove_file(&spill).ok();

    let graphs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let _ = ensemble.predict(&graphs); // warm-up
    let seq_s = median_secs(cfg.reps, || {
        std::hint::black_box(ensemble.predict(&graphs));
    });

    let t1 = InferenceEngine::with_config(&ensemble, ServeConfig::new(8, 1));
    let t1_s = median_secs(cfg.reps, || {
        std::hint::black_box(t1.predict(&graphs));
    });

    let mt = InferenceEngine::with_config(&ensemble, ServeConfig::new(8, cores));
    let mt_s = median_secs(cfg.reps, || {
        std::hint::black_box(mt.predict(&graphs));
    });

    // Parity gate: perf numbers are meaningless if the output drifted.
    let seq_bits: Vec<u64> = ensemble
        .predict(&graphs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let mt_bits: Vec<u64> = mt.predict(&graphs).iter().map(|v| v.to_bits()).collect();
    assert_eq!(seq_bits, mt_bits, "engine output diverged from sequential");
    let warm_bits: Vec<u64> = loaded
        .ensemble("dynamic")
        .expect("dynamic ensemble present")
        .predict(&graphs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        seq_bits, warm_bits,
        "loaded artifact diverged from the trained ensemble"
    );

    // Socket-level serving throughput: publish the trained heads as an
    // artifact, spawn the daemon on a free port and drive it with
    // concurrent PGRPC clients. Correctness gates the number: every
    // served prediction must be bit-identical to the in-process path.
    let gear = powergear::PowerGear {
        total_model: ensemble.clone(),
        dynamic_model: ensemble.clone(),
    };
    let owned_graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();
    let expected = gear.estimate_graphs(&graphs);
    let reg_dir = std::env::temp_dir().join(format!("pg_perf_serve_{}", std::process::id()));
    let registry = pg_store::ModelRegistry::open(&reg_dir).expect("perf registry");
    registry
        .publish(
            "perf",
            &gear.to_artifact(
                pg_store::ArtifactMeta::now(&ds.kernel, "total+dynamic"),
                &[],
                0,
            ),
        )
        .expect("perf publish");
    let mut daemon_cfg = powergear::daemon::DaemonConfig::new("127.0.0.1:0");
    daemon_cfg.registry_dir = Some(reg_dir.clone());
    let daemon = powergear::daemon::Daemon::bind(daemon_cfg)
        .expect("perf daemon bind")
        .spawn();
    let load = crate::loadgen::run_load(
        daemon.addr(),
        &ds.kernel,
        &owned_graphs,
        Some(&expected),
        &crate::loadgen::LoadConfig::quick(),
    )
    .expect("loadgen run");
    daemon.stop().expect("perf daemon stop");
    std::fs::remove_dir_all(&reg_dir).ok();
    assert_eq!(load.errors, 0, "daemon returned errors under load");
    assert_eq!(
        load.mismatches, 0,
        "served predictions diverged from the in-process path"
    );

    // Registry hot path: handles resolved once (as instrumented code
    // holds them), then a tight inc+observe loop. Measured after the
    // serving runs so the per-thread shards are warm.
    let ctr = pg_util::metrics::counter("perf_overhead_probe_total");
    let hist = pg_util::metrics::histogram(
        "perf_overhead_probe_us",
        pg_util::metrics::buckets::LATENCY_US,
    );
    const OVERHEAD_OPS: u64 = 200_000;
    let overhead_s = median_secs(cfg.reps, || {
        for i in 0..OVERHEAD_OPS {
            ctr.inc();
            hist.observe(i & 1023);
        }
    });

    let n = graphs.len() as f64;
    vec![
        PerfResult {
            name: "seq_graphs_per_sec".into(),
            value: n / seq_s.max(1e-9),
        },
        PerfResult {
            name: "engine_t1_graphs_per_sec".into(),
            value: n / t1_s.max(1e-9),
        },
        PerfResult {
            name: "engine_mt_graphs_per_sec".into(),
            value: n / mt_s.max(1e-9),
        },
        PerfResult {
            name: "hls_cache_replay_speedup".into(),
            value: cold_s / warm_s.max(1e-9),
        },
        PerfResult {
            name: "hls_designs_per_sec".into(),
            value: designs as f64 / cold_s.max(1e-9),
        },
        PerfResult {
            name: "cold_synth_throughput".into(),
            value: cold_build_designs as f64 / build_s.max(1e-9),
        },
        PerfResult {
            name: "train_throughput".into(),
            value: graph_epochs / train_s.max(1e-9),
        },
        PerfResult {
            name: "warm_start_speedup".into(),
            value: train_s / load_s.max(1e-9),
        },
        PerfResult {
            name: "serve_throughput".into(),
            value: load.graphs_per_sec(),
        },
        PerfResult {
            name: "metrics_overhead".into(),
            value: OVERHEAD_OPS as f64 / overhead_s.max(1e-9),
        },
    ]
}

/// Serializes results as `{"metrics": {"name": value, ...}}`.
pub fn to_json(results: &[PerfResult]) -> String {
    let mut out = String::from("{\n  \"metrics\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {:.3}{}\n", r.name, r.value, comma));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses the `{"metrics": {...}}` JSON subset written by [`to_json`]
/// (tolerates arbitrary whitespace; ignores unknown structure).
pub fn parse_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for raw in text.split(',') {
        // each fragment holds at most one "name": value pair
        let Some(colon) = raw.rfind(':') else {
            continue;
        };
        let value: f64 = match raw[colon + 1..]
            .trim()
            .trim_end_matches(['}', '\n', ' ', '\t'])
            .trim()
            .parse()
        {
            Ok(v) => v,
            Err(_) => continue,
        };
        let name_part = &raw[..colon];
        let Some(end) = name_part.rfind('"') else {
            continue;
        };
        let Some(start) = name_part[..end].rfind('"') else {
            continue;
        };
        let name = &name_part[start + 1..end];
        if name != "metrics" {
            out.insert(name.to_string(), value);
        }
    }
    out
}

/// A metric that regressed beyond the allowed threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Currently measured value.
    pub current: f64,
}

/// Compares current results to a baseline: metric `m` regresses when
/// `current < baseline / threshold` (all metrics are higher-is-better).
/// Metrics missing from either side are skipped — adding a new metric must
/// not break CI until its baseline lands.
pub fn compare(
    results: &[PerfResult],
    baseline: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<Regression> {
    assert!(threshold >= 1.0, "threshold must be >= 1");
    results
        .iter()
        .filter_map(|r| {
            let &base = baseline.get(&r.name)?;
            (r.value < base / threshold).then(|| Regression {
                name: r.name.clone(),
                baseline: base,
                current: r.value,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<PerfResult> {
        vec![
            PerfResult {
                name: "a_metric".into(),
                value: 120.5,
            },
            PerfResult {
                name: "b_metric".into(),
                value: 3.25,
            },
        ]
    }

    #[test]
    fn json_roundtrip() {
        let json = to_json(&results());
        let parsed = parse_json(&json);
        assert_eq!(parsed.len(), 2);
        assert!((parsed["a_metric"] - 120.5).abs() < 1e-6);
        assert!((parsed["b_metric"] - 3.25).abs() < 1e-6);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a_metric".to_string(), 200.0);
        baseline.insert("b_metric".to_string(), 3.0);
        baseline.insert("unmeasured".to_string(), 1.0);
        // threshold 2: a_metric needs >= 100 (ok at 120.5), b needs >= 1.5
        let regs = compare(&results(), &baseline, 2.0);
        assert!(regs.is_empty(), "{regs:?}");
        // threshold 1.5: a_metric needs >= 133.3 -> regression
        let regs = compare(&results(), &baseline, 1.5);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "a_metric");
    }

    #[test]
    fn missing_baseline_metrics_are_skipped() {
        let baseline = BTreeMap::new();
        assert!(compare(&results(), &baseline, 2.0).is_empty());
    }

    #[test]
    fn quick_suite_produces_all_metrics() {
        let results = run_perf_suite(&PerfConfig {
            samples: 6,
            epochs: 1,
            reps: 1,
        });
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(
                r.value.is_finite() && r.value > 0.0,
                "{}: {}",
                r.name,
                r.value
            );
        }
        // memoized replay must be dramatically faster than cold synthesis
        let speedup = results
            .iter()
            .find(|r| r.name == "hls_cache_replay_speedup")
            .unwrap();
        assert!(
            speedup.value > 2.0,
            "cache replay speedup {}",
            speedup.value
        );
    }
}
