//! Typed errors for the persistence layer.
//!
//! Every decode path returns a [`StoreError`] instead of panicking: a
//! corrupt, truncated or foreign file must never take the process down —
//! the registry and the CLI surface these as clean diagnostics.

use std::fmt;
use std::io;

/// Everything that can go wrong saving or loading an artifact.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with the `PGSTORE\0` magic.
    BadMagic {
        /// The bytes actually found (up to the magic length).
        found: Vec<u8>,
    },
    /// The container's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The file ends before a structure is complete.
    Truncated {
        /// What was being read when the data ran out.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    CrcMismatch {
        /// Section name.
        section: String,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC of the bytes actually present.
        actual: u32,
    },
    /// A required section is absent from the container.
    MissingSection {
        /// Section name.
        section: &'static str,
    },
    /// Structurally invalid data inside an intact (CRC-verified) section.
    Corrupt {
        /// Human-readable description.
        detail: String,
    },
    /// The artifact loaded, but a semantic check failed (e.g. the stored
    /// probe predictions no longer match the deserialized ensemble).
    VerifyFailed {
        /// Human-readable description.
        detail: String,
    },
}

impl StoreError {
    /// Convenience constructor for [`StoreError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a PGSTORE container (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "container format v{found} is newer than supported v{supported}"
            ),
            StoreError::Truncated { context } => {
                write!(f, "file truncated while reading {context}")
            }
            StoreError::CrcMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "section `{section}` corrupt: crc {actual:08x}, expected {expected:08x}"
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section `{section}` missing")
            }
            StoreError::Corrupt { detail } => write!(f, "corrupt payload: {detail}"),
            StoreError::VerifyFailed { detail } => write!(f, "verification failed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
