//! `PGRPC` — the length-prefixed binary framing protocol the `powergear
//! serve --listen` daemon speaks over TCP.
//!
//! The full byte-level specification (every frame type, error code and the
//! versioning/compatibility rules) lives in `docs/PROTOCOL.md`; this module
//! is its executable counterpart. Payloads reuse the crate's [`Enc`]/[`Dec`]
//! codecs, so a [`pg_graphcon::PowerGraph`] travels over a socket in exactly
//! the bytes it is persisted with.
//!
//! # Frame layout (`PGRPC_VERSION` 1)
//!
//! All integers are little-endian. Every frame is a 16-byte header followed
//! by `length` payload bytes:
//!
//! ```text
//! offset 0:  magic     4 bytes   "PGRP"
//!        4:  version   u8        readers reject newer versions
//!        5:  type      u8        frame type tag (see [`FrameType`])
//!        6:  flags     u16       reserved, must be zero
//!        8:  length    u32       payload bytes (<= MAX_PAYLOAD)
//!       12:  crc32     u32       IEEE CRC-32 of the payload
//!       16:  payload   length bytes
//! ```
//!
//! Decoding is defensive end to end: bad magic, a newer version, a length
//! above [`MAX_PAYLOAD`], a CRC mismatch or a truncated payload all surface
//! as typed [`StoreError`]s — never a panic, never an oversized allocation
//! (mirroring the `PGSTORE` container guarantees). An *unknown frame type*
//! is deliberately not a decode error: [`RawFrame`]s carry the raw tag so a
//! server can answer `Error { code: UNKNOWN_TYPE }` and keep the
//! connection alive, which is what lets old servers tolerate new clients.

use crate::codec::{dec_graph, enc_graph, Dec, Enc};
use crate::container::crc32;
use crate::error::StoreError;
use pg_graphcon::PowerGraph;
use std::io::{Read, Write};

/// First four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"PGRP";

/// Protocol version this build speaks; readers reject newer versions.
pub const PGRPC_VERSION: u8 = 1;

/// Frame header size in bytes (magic + version + type + flags + length +
/// crc).
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame payload (64 MiB): a corrupt or hostile length
/// field must never drive allocation.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Frame type tags. Requests have the high bit clear, responses have it
/// set; `Error` is the universal failure response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Liveness check (empty payload).
    Ping = 0x01,
    /// Inference request: [`PredictRequest`].
    Predict = 0x02,
    /// Server counters request (empty payload).
    Stats = 0x03,
    /// Loaded-model listing request (empty payload).
    ModelList = 0x04,
    /// Graceful shutdown request (empty payload).
    Shutdown = 0x05,
    /// Full metrics-registry snapshot request (empty payload).
    StatsV2 = 0x06,
    /// Response to [`FrameType::Ping`] (empty payload).
    Pong = 0x81,
    /// Response to [`FrameType::Predict`]: [`PredictResponse`].
    PredictOk = 0x82,
    /// Response to [`FrameType::Stats`]: [`StatsResponse`].
    StatsOk = 0x83,
    /// Response to [`FrameType::ModelList`]: [`ModelListResponse`].
    ModelListOk = 0x84,
    /// Response to [`FrameType::Shutdown`] (empty payload), sent before the
    /// server closes the connection.
    ShutdownOk = 0x85,
    /// Response to [`FrameType::StatsV2`]: [`StatsV2Response`].
    StatsV2Ok = 0x86,
    /// Failure response: [`ErrorFrame`].
    Error = 0xFF,
}

impl FrameType {
    /// Parses a raw tag byte; `None` for tags this build does not know.
    pub fn from_tag(tag: u8) -> Option<FrameType> {
        match tag {
            0x01 => Some(FrameType::Ping),
            0x02 => Some(FrameType::Predict),
            0x03 => Some(FrameType::Stats),
            0x04 => Some(FrameType::ModelList),
            0x05 => Some(FrameType::Shutdown),
            0x06 => Some(FrameType::StatsV2),
            0x81 => Some(FrameType::Pong),
            0x82 => Some(FrameType::PredictOk),
            0x83 => Some(FrameType::StatsOk),
            0x84 => Some(FrameType::ModelListOk),
            0x85 => Some(FrameType::ShutdownOk),
            0x86 => Some(FrameType::StatsV2Ok),
            0xFF => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// A decoded frame: the raw type tag plus its CRC-verified payload.
///
/// The tag is kept raw (with a typed view via [`RawFrame::frame_type`]) so
/// receivers can answer unknown types with an [`ErrorFrame`] instead of
/// dropping the connection — the protocol's forward-compatibility rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Frame type tag as it appeared on the wire.
    pub tag: u8,
    /// CRC-verified payload bytes.
    pub payload: Vec<u8>,
}

impl RawFrame {
    /// A frame of a known type.
    pub fn new(ftype: FrameType, payload: Vec<u8>) -> RawFrame {
        RawFrame {
            tag: ftype as u8,
            payload,
        }
    }

    /// The typed frame tag, if this build knows it.
    pub fn frame_type(&self) -> Option<FrameType> {
        FrameType::from_tag(self.tag)
    }
}

/// Serializes a frame (header + payload) to bytes.
pub fn encode_frame(frame: &RawFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(PGRPC_VERSION);
    out.push(frame.tag);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&frame.payload).to_le_bytes());
    out.extend_from_slice(&frame.payload);
    out
}

/// Validates a frame header, returning `(tag, payload_len, crc)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, usize, u32), StoreError> {
    if header[..4] != FRAME_MAGIC {
        return Err(StoreError::BadMagic {
            found: header[..4].to_vec(),
        });
    }
    let version = header[4];
    if version > PGRPC_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version as u32,
            supported: PGRPC_VERSION as u32,
        });
    }
    let tag = header[5];
    let flags = u16::from_le_bytes([header[6], header[7]]);
    if flags != 0 {
        return Err(StoreError::corrupt(format!(
            "frame flags {flags:#06x} are reserved and must be zero"
        )));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(StoreError::corrupt(format!(
            "frame payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let crc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    Ok((tag, len, crc))
}

/// Decodes one frame from the front of `bytes`, returning the frame and the
/// number of bytes consumed.
///
/// # Errors
///
/// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
/// [`StoreError::Truncated`], [`StoreError::CrcMismatch`] or
/// [`StoreError::Corrupt`]; never panics on malformed input.
pub fn decode_frame(bytes: &[u8]) -> Result<(RawFrame, usize), StoreError> {
    if bytes.len() < HEADER_LEN {
        // Short inputs that do not even start with the magic are foreign
        // data, not a truncated frame.
        if !FRAME_MAGIC.starts_with(&bytes[..bytes.len().min(4)]) {
            return Err(StoreError::BadMagic {
                found: bytes[..bytes.len().min(4)].to_vec(),
            });
        }
        return Err(StoreError::Truncated {
            context: "frame header",
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (tag, len, crc) = parse_header(&header)?;
    if bytes.len() < HEADER_LEN + len {
        return Err(StoreError::Truncated {
            context: "frame payload",
        });
    }
    let payload = bytes[HEADER_LEN..HEADER_LEN + len].to_vec();
    let actual = crc32(&payload);
    if actual != crc {
        return Err(StoreError::CrcMismatch {
            section: "frame payload".to_string(),
            expected: crc,
            actual,
        });
    }
    Ok((RawFrame { tag, payload }, HEADER_LEN + len))
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &RawFrame) -> Result<(), StoreError> {
    w.write_all(&encode_frame(frame))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, or `None` on a clean end-of-stream (the peer
/// closed the connection between frames).
///
/// # Errors
///
/// I/O errors, plus every header/CRC validation error of
/// [`decode_frame`]. EOF in the *middle* of a frame is
/// [`StoreError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<RawFrame>, StoreError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(StoreError::Truncated {
                context: "frame header",
            });
        }
        got += n;
    }
    let (tag, len, crc) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                context: "frame payload",
            }
        } else {
            StoreError::Io(e)
        }
    })?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(StoreError::CrcMismatch {
            section: "frame payload".to_string(),
            expected: crc,
            actual,
        });
    }
    Ok(Some(RawFrame { tag, payload }))
}

// ---------------------------------------------------------------------------
// Request/response payloads

/// Error codes carried by [`ErrorFrame`].
pub mod error_code {
    /// The request frame failed to decode (bad payload).
    pub const BAD_REQUEST: u16 = 1;
    /// The frame type tag is unknown to this server.
    pub const UNKNOWN_TYPE: u16 = 2;
    /// No loaded model routes the requested kernel.
    pub const NO_MODEL: u16 = 3;
    /// The server failed internally while serving the request.
    pub const INTERNAL: u16 = 4;
    /// The server is shutting down and did not serve the request.
    pub const SHUTTING_DOWN: u16 = 5;
}

/// `Predict` request: the graphs of one design batch plus the kernel name
/// used for per-kernel model routing. All graphs of one request are always
/// served by a single model snapshot (the hot-swap atomicity unit).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Kernel the graphs belong to (routing key).
    pub kernel: String,
    /// Graphs to estimate, in response order.
    pub graphs: Vec<PowerGraph>,
}

impl PredictRequest {
    /// Encodes the request payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.kernel);
        e.u32(self.graphs.len() as u32);
        for g in &self.graphs {
            enc_graph(&mut e, g);
        }
        e.into_bytes()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any malformed byte (typed, never panics).
    pub fn from_payload(payload: &[u8]) -> Result<PredictRequest, StoreError> {
        let mut d = Dec::new(payload);
        let kernel = d.str("predict kernel")?;
        let n = d.count(8, "predict graph count")?;
        let mut graphs = Vec::with_capacity(n);
        for _ in 0..n {
            graphs.push(dec_graph(&mut d)?);
        }
        d.finish("predict request")?;
        Ok(PredictRequest { kernel, graphs })
    }
}

/// `PredictOk` response: per-target predictions in request order, stamped
/// with the serving model's identity so clients (and the hot-swap tests)
/// can attribute every response to exactly one model snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// Registry name of the model that served the request.
    pub model: String,
    /// Training-config fingerprint of that model (see
    /// [`crate::ArtifactMeta::train_fingerprint`]).
    pub fingerprint: u64,
    /// `(total, dynamic)` watts per input graph, in request order.
    pub predictions: Vec<(f64, f64)>,
}

impl PredictResponse {
    /// Encodes the response payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.model);
        e.u64(self.fingerprint);
        e.u32(self.predictions.len() as u32);
        for &(t, d) in &self.predictions {
            e.f64(t);
            e.f64(d);
        }
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any malformed byte.
    pub fn from_payload(payload: &[u8]) -> Result<PredictResponse, StoreError> {
        let mut d = Dec::new(payload);
        let model = d.str("response model name")?;
        let fingerprint = d.u64("response fingerprint")?;
        let n = d.count(16, "prediction count")?;
        let mut predictions = Vec::with_capacity(n);
        for _ in 0..n {
            let t = d.f64("total watts")?;
            let dy = d.f64("dynamic watts")?;
            predictions.push((t, dy));
        }
        d.finish("predict response")?;
        Ok(PredictResponse {
            model,
            fingerprint,
            predictions,
        })
    }
}

/// `StatsOk` response: monotonic serving counters since daemon start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsResponse {
    /// Seconds since the daemon started listening.
    pub uptime_s: f64,
    /// Predict requests admitted.
    pub requests: u64,
    /// Graphs served (one request can carry many graphs).
    pub graphs: u64,
    /// Micro-batches executed by the engine.
    pub batches: u64,
    /// Error frames sent.
    pub errors: u64,
    /// Hot model swaps applied.
    pub swaps: u64,
    /// Models currently loaded.
    pub models: u64,
}

impl StatsResponse {
    /// Encodes the response payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64(self.uptime_s);
        e.u64(self.requests);
        e.u64(self.graphs);
        e.u64(self.batches);
        e.u64(self.errors);
        e.u64(self.swaps);
        e.u64(self.models);
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any malformed byte.
    pub fn from_payload(payload: &[u8]) -> Result<StatsResponse, StoreError> {
        let mut d = Dec::new(payload);
        let out = StatsResponse {
            uptime_s: d.f64("stats uptime")?,
            requests: d.u64("stats requests")?,
            graphs: d.u64("stats graphs")?,
            batches: d.u64("stats batches")?,
            errors: d.u64("stats errors")?,
            swaps: d.u64("stats swaps")?,
            models: d.u64("stats models")?,
        };
        d.finish("stats response")?;
        Ok(out)
    }
}

/// Payload format version carried *inside* `StatsV2Ok`. The frame type
/// itself rides the protocol's forward-compatibility rule (unknown tags
/// get `Error { UNKNOWN_TYPE }`, no `PGRPC_VERSION` bump needed); this
/// inner version lets the snapshot schema evolve independently — readers
/// reject a newer format the same way the frame header rejects a newer
/// protocol.
pub const STATSV2_FORMAT_VERSION: u32 = 1;

/// `StatsV2Ok` response: a full [`pg_util::metrics`] registry snapshot —
/// every counter, gauge and histogram (with label sets), plus the prof
/// scope roll-ins — superseding the fixed-field [`StatsResponse`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsV2Response {
    /// Seconds since the daemon started listening.
    pub uptime_s: f64,
    /// Point-in-time registry snapshot.
    pub snapshot: pg_util::metrics::MetricsSnapshot,
}

fn enc_labels(e: &mut Enc, labels: &[(String, String)]) {
    e.u32(labels.len() as u32);
    for (k, v) in labels {
        e.str(k);
        e.str(v);
    }
}

fn dec_labels(d: &mut Dec) -> Result<Vec<(String, String)>, StoreError> {
    let n = d.count(8, "metric label count")?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push((d.str("metric label key")?, d.str("metric label value")?));
    }
    Ok(labels)
}

impl StatsV2Response {
    /// Encodes the response payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(STATSV2_FORMAT_VERSION);
        e.f64(self.uptime_s);
        e.u32(self.snapshot.counters.len() as u32);
        for c in &self.snapshot.counters {
            e.str(&c.name);
            enc_labels(&mut e, &c.labels);
            e.u64(c.value);
        }
        e.u32(self.snapshot.gauges.len() as u32);
        for g in &self.snapshot.gauges {
            e.str(&g.name);
            enc_labels(&mut e, &g.labels);
            // i64 travels as its two's-complement bit pattern.
            e.u64(g.value as u64);
        }
        e.u32(self.snapshot.histograms.len() as u32);
        for h in &self.snapshot.histograms {
            e.str(&h.name);
            enc_labels(&mut e, &h.labels);
            e.u64(h.count);
            e.u64(h.sum);
            e.u32(h.buckets.len() as u32);
            for &(ub, c) in &h.buckets {
                e.u64(ub);
                e.u64(c);
            }
        }
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnsupportedVersion`] for a newer snapshot format;
    /// otherwise any malformed byte surfaces as a typed [`StoreError`] —
    /// never a panic, never an oversized allocation.
    pub fn from_payload(payload: &[u8]) -> Result<StatsV2Response, StoreError> {
        use pg_util::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
        let mut d = Dec::new(payload);
        let version = d.u32("stats v2 format version")?;
        if version > STATSV2_FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: STATSV2_FORMAT_VERSION,
            });
        }
        let uptime_s = d.f64("stats v2 uptime")?;
        let mut snapshot = pg_util::metrics::MetricsSnapshot::default();
        let nc = d.count(16, "stats v2 counter count")?;
        for _ in 0..nc {
            snapshot.counters.push(CounterSnapshot {
                name: d.str("counter name")?,
                labels: dec_labels(&mut d)?,
                value: d.u64("counter value")?,
            });
        }
        let ng = d.count(16, "stats v2 gauge count")?;
        for _ in 0..ng {
            snapshot.gauges.push(GaugeSnapshot {
                name: d.str("gauge name")?,
                labels: dec_labels(&mut d)?,
                value: d.u64("gauge value")? as i64,
            });
        }
        let nh = d.count(28, "stats v2 histogram count")?;
        for _ in 0..nh {
            let name = d.str("histogram name")?;
            let labels = dec_labels(&mut d)?;
            let count = d.u64("histogram count")?;
            let sum = d.u64("histogram sum")?;
            let nb = d.count(16, "histogram bucket count")?;
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                buckets.push((d.u64("bucket bound")?, d.u64("bucket value")?));
            }
            snapshot.histograms.push(HistogramSnapshot {
                name,
                labels,
                count,
                sum,
                buckets,
            });
        }
        d.finish("stats v2 response")?;
        Ok(StatsV2Response { uptime_s, snapshot })
    }
}

/// One row of a `ModelListOk` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Kernel(s) the model was trained on (comma-separated, as stored in
    /// [`crate::ArtifactMeta::kernel`]).
    pub kernel: String,
    /// Training-config fingerprint.
    pub fingerprint: u64,
}

/// `ModelListOk` response: every model currently loaded, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelListResponse {
    /// Loaded models.
    pub models: Vec<ModelInfo>,
}

impl ModelListResponse {
    /// Encodes the response payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.models.len() as u32);
        for m in &self.models {
            e.str(&m.name);
            e.str(&m.kernel);
            e.u64(m.fingerprint);
        }
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any malformed byte.
    pub fn from_payload(payload: &[u8]) -> Result<ModelListResponse, StoreError> {
        let mut d = Dec::new(payload);
        let n = d.count(16, "model list count")?;
        let mut models = Vec::with_capacity(n);
        for _ in 0..n {
            models.push(ModelInfo {
                name: d.str("model name")?,
                kernel: d.str("model kernel")?,
                fingerprint: d.u64("model fingerprint")?,
            });
        }
        d.finish("model list response")?;
        Ok(ModelListResponse { models })
    }
}

/// `Error` response: a stable numeric code (see [`error_code`]) plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable error code.
    pub code: u16,
    /// Human-readable description.
    pub message: String,
}

impl ErrorFrame {
    /// Encodes the response payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.code as u32);
        e.str(&self.message);
        e.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any malformed byte.
    pub fn from_payload(payload: &[u8]) -> Result<ErrorFrame, StoreError> {
        let mut d = Dec::new(payload);
        let code = d.u32("error code")?;
        let code = u16::try_from(code)
            .map_err(|_| StoreError::corrupt(format!("error code {code} exceeds u16")))?;
        let message = d.str("error message")?;
        d.finish("error frame")?;
        Ok(ErrorFrame { code, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graphcon::Relation;

    fn graph(seed: u64) -> PowerGraph {
        let nodes = 3 + (seed % 4) as usize;
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + (seed as usize + n) % f] = 1.0;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "frame".into(),
            design_id: format!("f{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne).map(|i| [0.1 * i as f32, 0.2, 0.3, 0.4]).collect(),
            edge_rel: (0..ne).map(|_| Relation::NN).collect(),
            meta: vec![0.5; 10],
        }
    }

    #[test]
    fn frame_roundtrip_all_types() {
        for (ftype, payload) in [
            (FrameType::Ping, vec![]),
            (FrameType::Predict, vec![1, 2, 3]),
            (FrameType::Error, vec![0; 100]),
        ] {
            let f = RawFrame::new(ftype, payload);
            let bytes = encode_frame(&f);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(back, f);
            assert_eq!(used, bytes.len());
            assert_eq!(back.frame_type(), Some(ftype));
        }
    }

    #[test]
    fn unknown_tag_decodes_as_raw() {
        let f = RawFrame {
            tag: 0x42,
            payload: vec![9, 9],
        };
        let (back, _) = decode_frame(&encode_frame(&f)).unwrap();
        assert_eq!(back.tag, 0x42);
        assert_eq!(back.frame_type(), None);
    }

    #[test]
    fn bad_magic_version_flags_length_crc_rejected() {
        let good = encode_frame(&RawFrame::new(FrameType::Ping, vec![7; 8]));

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = PGRPC_VERSION + 1;
        assert!(matches!(
            decode_frame(&bad),
            Err(StoreError::UnsupportedVersion { .. })
        ));

        let mut bad = good.clone();
        bad[6] = 1; // reserved flags
        assert!(matches!(
            decode_frame(&bad),
            Err(StoreError::Corrupt { .. })
        ));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(StoreError::Corrupt { .. })
        ));

        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad),
            Err(StoreError::CrcMismatch { .. })
        ));

        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let frames = vec![
            RawFrame::new(FrameType::Ping, vec![]),
            RawFrame::new(FrameType::Predict, vec![1; 33]),
            RawFrame::new(FrameType::StatsOk, vec![2; 7]),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn mid_frame_eof_is_truncated() {
        let bytes = encode_frame(&RawFrame::new(FrameType::Predict, vec![3; 20]));
        let mut cursor = std::io::Cursor::new(bytes[..bytes.len() - 5].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn predict_request_roundtrip() {
        let req = PredictRequest {
            kernel: "gemm".into(),
            graphs: (0..3).map(graph).collect(),
        };
        let back = PredictRequest::from_payload(&req.to_payload()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn predict_response_roundtrip_bit_exact() {
        let resp = PredictResponse {
            model: "gemm-v2".into(),
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            predictions: vec![(0.51, 0.22), (1.5e-300, f64::MAX), (-0.0, 3.25)],
        };
        let back = PredictResponse::from_payload(&resp.to_payload()).unwrap();
        assert_eq!(back.model, resp.model);
        assert_eq!(back.fingerprint, resp.fingerprint);
        for ((t1, d1), (t2, d2)) in resp.predictions.iter().zip(&back.predictions) {
            assert_eq!(t1.to_bits(), t2.to_bits());
            assert_eq!(d1.to_bits(), d2.to_bits());
        }
    }

    #[test]
    fn stats_and_model_list_and_error_roundtrip() {
        let stats = StatsResponse {
            uptime_s: 12.5,
            requests: 100,
            graphs: 640,
            batches: 25,
            errors: 2,
            swaps: 1,
            models: 3,
        };
        assert_eq!(
            StatsResponse::from_payload(&stats.to_payload()).unwrap(),
            stats
        );

        let list = ModelListResponse {
            models: vec![
                ModelInfo {
                    name: "atax-v1".into(),
                    kernel: "atax".into(),
                    fingerprint: 7,
                },
                ModelInfo {
                    name: "gemm-v1".into(),
                    kernel: "gemm,mvt".into(),
                    fingerprint: 8,
                },
            ],
        };
        assert_eq!(
            ModelListResponse::from_payload(&list.to_payload()).unwrap(),
            list
        );

        let err = ErrorFrame {
            code: error_code::NO_MODEL,
            message: "no model for kernel `syrk`".into(),
        };
        assert_eq!(ErrorFrame::from_payload(&err.to_payload()).unwrap(), err);
    }

    fn sample_stats_v2() -> StatsV2Response {
        use pg_util::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
        StatsV2Response {
            uptime_s: 3.75,
            snapshot: pg_util::metrics::MetricsSnapshot {
                counters: vec![
                    CounterSnapshot {
                        name: "serve_requests_total".into(),
                        labels: vec![("model".into(), "gemm-v1".into())],
                        value: 123,
                    },
                    CounterSnapshot {
                        name: "serve_errors_total".into(),
                        labels: vec![],
                        value: u64::MAX,
                    },
                ],
                gauges: vec![GaugeSnapshot {
                    name: "serve_queue_depth".into(),
                    labels: vec![],
                    value: -3,
                }],
                histograms: vec![HistogramSnapshot {
                    name: "serve_service_time_us".into(),
                    labels: vec![("model".into(), "gemm-v1".into())],
                    count: 5,
                    sum: 999,
                    buckets: vec![(100, 2), (1_000, 2), (u64::MAX, 1)],
                }],
            },
        }
    }

    #[test]
    fn stats_v2_roundtrip_bit_exact() {
        let resp = sample_stats_v2();
        let back = StatsV2Response::from_payload(&resp.to_payload()).unwrap();
        assert_eq!(back.uptime_s.to_bits(), resp.uptime_s.to_bits());
        assert_eq!(back.snapshot, resp.snapshot);

        // Empty snapshot is valid too.
        let empty = StatsV2Response::default();
        assert_eq!(
            StatsV2Response::from_payload(&empty.to_payload()).unwrap(),
            empty
        );
    }

    #[test]
    fn stats_v2_rejects_newer_format_version() {
        let mut payload = sample_stats_v2().to_payload();
        payload[..4].copy_from_slice(&(STATSV2_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            StatsV2Response::from_payload(&payload),
            Err(StoreError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn stats_v2_truncation_is_typed_error() {
        let full = sample_stats_v2().to_payload();
        for cut in 0..full.len() {
            assert!(
                StatsV2Response::from_payload(&full[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        let req = PredictRequest {
            kernel: "bicg".into(),
            graphs: vec![graph(1)],
        };
        let full = req.to_payload();
        for cut in 0..full.len() {
            assert!(
                PredictRequest::from_payload(&full[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        let resp = PredictResponse {
            model: "m".into(),
            fingerprint: 1,
            predictions: vec![(1.0, 2.0)],
        };
        let full = resp.to_payload();
        for cut in 0..full.len() {
            assert!(
                PredictResponse::from_payload(&full[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
