//! Codec for complete synthesized [`HlsDesign`]s — the payload of an
//! `HlsCache` spill.
//!
//! Synthesis is deterministic, but it is also the single most expensive
//! step of the pipeline; spilling finished designs lets a fresh process
//! warm-start a design-space replay without re-running HLS. The codec
//! covers every artifact the downstream stages consume: the SSA IR
//! (including affine memory references), block schedules, FU binding and
//! sharing sets, the FSMD, the HLS report, partitioned array declarations
//! and the FU library.

use crate::codec::{dec_directives, dec_report, enc_directives, enc_report, Dec, Enc};
use crate::error::StoreError;
use pg_hls::{
    Binding, BlockSchedule, FsmState, Fsmd, FuInstance, FuKind, FuLibrary, HlsDesign, Schedule,
};
use pg_ir::{
    AffineExpr, ArrayDecl, ArrayKind, IrBlock, IrFunction, IrOp, LoopDim, MemRef, Opcode, Operand,
    ValueId,
};

// ---------------------------------------------------------------------------
// IR building blocks

fn enc_affine(e: &mut Enc, a: &AffineExpr) {
    e.u32(a.terms.len() as u32);
    for (v, c) in &a.terms {
        e.str(v);
        e.i64(*c);
    }
    e.i64(a.offset);
}

fn dec_affine(d: &mut Dec<'_>) -> Result<AffineExpr, StoreError> {
    let n = d.count(12, "affine term count")?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let v = d.str("affine variable")?;
        let c = d.i64("affine coefficient")?;
        terms.push((v, c));
    }
    Ok(AffineExpr {
        terms,
        offset: d.i64("affine offset")?,
    })
}

fn enc_operand(e: &mut Enc, o: &Operand) {
    match o {
        Operand::Value(v) => {
            e.u8(0);
            e.u32(v.0);
        }
        Operand::ConstF(c) => {
            e.u8(1);
            e.f64(*c);
        }
        Operand::ConstI(c) => {
            e.u8(2);
            e.i64(*c);
        }
        Operand::IVar(s) => {
            e.u8(3);
            e.str(s);
        }
        Operand::Scalar(s) => {
            e.u8(4);
            e.str(s);
        }
    }
}

fn dec_operand(d: &mut Dec<'_>) -> Result<Operand, StoreError> {
    Ok(match d.u8("operand tag")? {
        0 => Operand::Value(ValueId(d.u32("operand value id")?)),
        1 => Operand::ConstF(d.f64("operand f const")?),
        2 => Operand::ConstI(d.i64("operand i const")?),
        3 => Operand::IVar(d.str("operand ivar")?),
        4 => Operand::Scalar(d.str("operand scalar")?),
        t => return Err(StoreError::corrupt(format!("unknown operand tag {t}"))),
    })
}

fn enc_memref(e: &mut Enc, m: &MemRef) {
    e.str(&m.array);
    e.u32(m.indices.len() as u32);
    for i in &m.indices {
        enc_affine(e, i);
    }
    enc_affine(e, &m.linear);
    match m.bank {
        Some(b) => {
            e.bool(true);
            e.u64(b as u64);
        }
        None => e.bool(false),
    }
}

fn dec_memref(d: &mut Dec<'_>) -> Result<MemRef, StoreError> {
    let array = d.str("memref array")?;
    let ni = d.count(8, "memref index count")?;
    let mut indices = Vec::with_capacity(ni);
    for _ in 0..ni {
        indices.push(dec_affine(d)?);
    }
    let linear = dec_affine(d)?;
    let bank = if d.bool("memref bank flag")? {
        Some(d.usize("memref bank")?)
    } else {
        None
    };
    Ok(MemRef {
        array,
        indices,
        linear,
        bank,
    })
}

fn opcode_tag(o: Opcode) -> u8 {
    o.index() as u8
}

fn opcode_from_tag(t: u8) -> Result<Opcode, StoreError> {
    Opcode::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| StoreError::corrupt(format!("unknown opcode tag {t}")))
}

fn enc_op(e: &mut Enc, op: &IrOp) {
    e.u32(op.id.0);
    e.u8(opcode_tag(op.opcode));
    e.u32(op.operands.len() as u32);
    for o in &op.operands {
        enc_operand(e, o);
    }
    e.u32(op.bits);
    e.u64(op.block as u64);
    match &op.mem {
        Some(m) => {
            e.bool(true);
            enc_memref(e, m);
        }
        None => e.bool(false),
    }
    e.u64(op.lane as u64);
}

fn dec_op(d: &mut Dec<'_>) -> Result<IrOp, StoreError> {
    let id = ValueId(d.u32("op id")?);
    let opcode = opcode_from_tag(d.u8("op opcode")?)?;
    let no = d.count(1, "op operand count")?;
    let mut operands = Vec::with_capacity(no);
    for _ in 0..no {
        operands.push(dec_operand(d)?);
    }
    let bits = d.u32("op bits")?;
    let block = d.usize("op block")?;
    let mem = if d.bool("op mem flag")? {
        Some(dec_memref(d)?)
    } else {
        None
    };
    let lane = d.usize("op lane")?;
    Ok(IrOp {
        id,
        opcode,
        operands,
        bits,
        block,
        mem,
        lane,
    })
}

fn enc_block(e: &mut Enc, b: &IrBlock) {
    e.str(&b.label);
    e.u32(b.dims.len() as u32);
    for dim in &b.dims {
        e.str(&dim.var);
        e.u64(dim.trip as u64);
        e.str(&dim.source_label);
    }
    e.u32(b.ops.len() as u32);
    for v in &b.ops {
        e.u32(v.0);
    }
    e.bool(b.pipelined);
    e.u64(b.unroll as u64);
}

fn dec_block(d: &mut Dec<'_>) -> Result<IrBlock, StoreError> {
    let label = d.str("block label")?;
    let nd = d.count(8, "block dim count")?;
    let mut dims = Vec::with_capacity(nd);
    for _ in 0..nd {
        dims.push(LoopDim {
            var: d.str("dim var")?,
            trip: d.usize("dim trip")?,
            source_label: d.str("dim source label")?,
        });
    }
    let no = d.count(4, "block op count")?;
    let mut ops = Vec::with_capacity(no);
    for _ in 0..no {
        ops.push(ValueId(d.u32("block op id")?));
    }
    Ok(IrBlock {
        label,
        dims,
        ops,
        pipelined: d.bool("block pipelined")?,
        unroll: d.usize("block unroll")?,
    })
}

fn enc_ir(e: &mut Enc, f: &IrFunction) {
    e.str(&f.name);
    e.u32(f.ops.len() as u32);
    for op in &f.ops {
        enc_op(e, op);
    }
    e.u32(f.blocks.len() as u32);
    for b in &f.blocks {
        enc_block(e, b);
    }
}

fn dec_ir(d: &mut Dec<'_>) -> Result<IrFunction, StoreError> {
    let name = d.str("ir name")?;
    let no = d.count(16, "ir op count")?;
    let mut ops = Vec::with_capacity(no);
    for _ in 0..no {
        ops.push(dec_op(d)?);
    }
    let nb = d.count(8, "ir block count")?;
    let mut blocks = Vec::with_capacity(nb);
    for _ in 0..nb {
        blocks.push(dec_block(d)?);
    }
    Ok(IrFunction { name, ops, blocks })
}

// ---------------------------------------------------------------------------
// Schedule, binding, FSMD

fn enc_schedule(e: &mut Enc, s: &Schedule) {
    e.u32(s.blocks.len() as u32);
    for b in &s.blocks {
        e.u64(b.block as u64);
        e.u32(b.start.len() as u32);
        for &c in &b.start {
            e.u32(c);
        }
        e.u32(b.depth);
        e.u32(b.ii);
        e.u64(b.total_latency);
    }
    e.u64(s.total_latency);
}

fn dec_schedule(d: &mut Dec<'_>) -> Result<Schedule, StoreError> {
    let nb = d.count(8, "schedule block count")?;
    let mut blocks = Vec::with_capacity(nb);
    for _ in 0..nb {
        let block = d.usize("schedule block index")?;
        let ns = d.count(4, "schedule start count")?;
        let mut start = Vec::with_capacity(ns);
        for _ in 0..ns {
            start.push(d.u32("schedule start cycle")?);
        }
        blocks.push(BlockSchedule {
            block,
            start,
            depth: d.u32("schedule depth")?,
            ii: d.u32("schedule ii")?,
            total_latency: d.u64("schedule block latency")?,
        });
    }
    Ok(Schedule {
        blocks,
        total_latency: d.u64("schedule latency")?,
    })
}

fn fu_kind_tag(k: FuKind) -> u8 {
    // Exhaustive match instead of a position() + expect(): the compiler
    // proves every kind has a tag, so the encode path cannot panic. Tags
    // must stay in `FuKind::ALL` order — `fu_kind_from_tag` inverts them.
    match k {
        FuKind::FAddSub => 0,
        FuKind::FMul => 1,
        FuKind::FDiv => 2,
        FuKind::FCmp => 3,
        FuKind::IntAlu => 4,
        FuKind::IntMul => 5,
        FuKind::MemPort => 6,
        FuKind::Wire => 7,
        FuKind::Control => 8,
    }
}

fn fu_kind_from_tag(t: u8) -> Result<FuKind, StoreError> {
    FuKind::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| StoreError::corrupt(format!("unknown FU kind tag {t}")))
}

fn enc_binding(e: &mut Enc, b: &Binding) {
    e.u32(b.instances.len() as u32);
    for inst in &b.instances {
        e.u8(fu_kind_tag(inst.kind));
        e.u64(inst.index as u64);
        e.u32(inst.ops.len() as u32);
        for v in &inst.ops {
            e.u32(v.0);
        }
        match &inst.mem {
            Some((a, bank)) => {
                e.bool(true);
                e.str(a);
                e.u64(*bank as u64);
            }
            None => e.bool(false),
        }
    }
    // The binding map is a BTreeMap, so iteration is already in ValueId
    // order and the encoding (and any checksum over it) is stable.
    e.u32(b.op_to_instance.len() as u32);
    for (v, &i) in &b.op_to_instance {
        e.u32(v.0);
        e.u64(i as u64);
    }
    e.u32(b.mux_inputs);
    e.u64(b.reg_bits);
}

fn dec_binding(d: &mut Dec<'_>) -> Result<Binding, StoreError> {
    let ni = d.count(8, "binding instance count")?;
    let mut instances = Vec::with_capacity(ni);
    for _ in 0..ni {
        let kind = fu_kind_from_tag(d.u8("instance kind")?)?;
        let index = d.usize("instance index")?;
        let no = d.count(4, "instance op count")?;
        let mut ops = Vec::with_capacity(no);
        for _ in 0..no {
            ops.push(ValueId(d.u32("instance op")?));
        }
        let mem = if d.bool("instance mem flag")? {
            let a = d.str("instance mem array")?;
            let bank = d.usize("instance mem bank")?;
            Some((a, bank))
        } else {
            None
        };
        instances.push(FuInstance {
            kind,
            index,
            ops,
            mem,
        });
    }
    let nm = d.count(12, "binding map count")?;
    let mut op_to_instance = std::collections::BTreeMap::new();
    for _ in 0..nm {
        let v = ValueId(d.u32("binding map op")?);
        let i = d.usize("binding map instance")?;
        op_to_instance.insert(v, i);
    }
    Ok(Binding {
        instances,
        op_to_instance,
        mux_inputs: d.u32("binding mux inputs")?,
        reg_bits: d.u64("binding reg bits")?,
    })
}

fn enc_fsmd(e: &mut Enc, f: &Fsmd) {
    e.u32(f.states.len() as u32);
    for s in &f.states {
        e.u64(s.block as u64);
        e.u32(s.cycle);
        e.u32(s.active.len() as u32);
        for v in &s.active {
            e.u32(v.0);
        }
    }
}

fn dec_fsmd(d: &mut Dec<'_>) -> Result<Fsmd, StoreError> {
    let ns = d.count(16, "fsmd state count")?;
    let mut states = Vec::with_capacity(ns);
    for _ in 0..ns {
        let block = d.usize("fsm state block")?;
        let cycle = d.u32("fsm state cycle")?;
        let na = d.count(4, "fsm active count")?;
        let mut active = Vec::with_capacity(na);
        for _ in 0..na {
            active.push(ValueId(d.u32("fsm active op")?));
        }
        states.push(FsmState {
            block,
            cycle,
            active,
        });
    }
    Ok(Fsmd { states })
}

// ---------------------------------------------------------------------------
// Arrays and the FU library

fn enc_arrays(e: &mut Enc, arrays: &[(ArrayDecl, usize)]) {
    e.u32(arrays.len() as u32);
    for (decl, banks) in arrays {
        e.str(&decl.name);
        e.u32(decl.dims.len() as u32);
        for &dim in &decl.dims {
            e.u64(dim as u64);
        }
        e.u8(match decl.kind {
            ArrayKind::Input => 0,
            ArrayKind::Output => 1,
            ArrayKind::Temp => 2,
        });
        e.u64(*banks as u64);
    }
}

fn dec_arrays(d: &mut Dec<'_>) -> Result<Vec<(ArrayDecl, usize)>, StoreError> {
    let n = d.count(16, "array count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str("array name")?;
        let nd = d.count(8, "array dim count")?;
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(d.usize("array dim")?);
        }
        let kind = match d.u8("array kind")? {
            0 => ArrayKind::Input,
            1 => ArrayKind::Output,
            2 => ArrayKind::Temp,
            t => return Err(StoreError::corrupt(format!("unknown array kind tag {t}"))),
        };
        let banks = d.usize("array banks")?;
        out.push((ArrayDecl { name, dims, kind }, banks));
    }
    Ok(out)
}

fn enc_lib(e: &mut Enc, l: &FuLibrary) {
    e.u32(l.mem_ports_per_bank);
    e.u32(l.bram_words);
    e.f64(l.target_clock_ns);
    e.f64(l.vdd);
}

fn dec_lib(d: &mut Dec<'_>) -> Result<FuLibrary, StoreError> {
    Ok(FuLibrary {
        mem_ports_per_bank: d.u32("lib mem ports")?,
        bram_words: d.u32("lib bram words")?,
        target_clock_ns: d.f64("lib clock")?,
        vdd: d.f64("lib vdd")?,
    })
}

// ---------------------------------------------------------------------------
// The design itself

/// Encodes a complete synthesized [`HlsDesign`].
pub fn enc_design(e: &mut Enc, design: &HlsDesign) {
    e.str(&design.kernel_name);
    enc_directives(e, &design.directives);
    enc_ir(e, &design.ir);
    enc_schedule(e, &design.schedule);
    enc_binding(e, &design.binding);
    enc_fsmd(e, &design.fsmd);
    enc_report(e, &design.report);
    enc_arrays(e, &design.arrays);
    enc_lib(e, &design.lib);
}

/// Decodes an [`HlsDesign`] written by [`enc_design`].
///
/// # Errors
///
/// [`StoreError`] on any truncation, unknown tag or inconsistent count.
pub fn dec_design(d: &mut Dec<'_>) -> Result<HlsDesign, StoreError> {
    Ok(HlsDesign {
        kernel_name: d.str("design kernel name")?,
        directives: dec_directives(d)?,
        ir: dec_ir(d)?,
        schedule: dec_schedule(d)?,
        binding: dec_binding(d)?,
        fsmd: dec_fsmd(d)?,
        report: dec_report(d)?,
        arrays: dec_arrays(d)?,
        lib: dec_lib(d)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hls::{Directives, HlsFlow};

    fn mvt_kernel() -> pg_ir::Kernel {
        // A tiny mvt-style kernel; the full Polybench suite lives in
        // `pg_datasets` (which sits above this crate in the DAG).
        use pg_ir::expr::{aff, Expr};
        pg_ir::KernelBuilder::new("mini_mvt")
            .array("A", &[6, 6], pg_ir::ArrayKind::Input)
            .array("x", &[6], pg_ir::ArrayKind::Input)
            .array("y", &[6], pg_ir::ArrayKind::Output)
            .loop_("i", 6, |b| {
                b.assign(("y", vec![aff("i")]), Expr::Const(0.0));
                b.loop_("j", 6, |b| {
                    b.assign(
                        ("y", vec![aff("i")]),
                        Expr::load("y", vec![aff("i")])
                            + Expr::load("A", vec![aff("i"), aff("j")])
                                * Expr::load("x", vec![aff("j")]),
                    );
                });
            })
            .build()
            .expect("valid kernel")
    }

    #[test]
    fn design_roundtrip_is_exact() {
        let kernel = mvt_kernel();
        let mut dir = Directives::new();
        dir.pipeline("j").unroll("j", 2);
        let design = HlsFlow::new().run(&kernel, &dir).expect("synthesis");
        let mut e = Enc::new();
        enc_design(&mut e, &design);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_design(&mut d).expect("decode");
        d.finish("design").expect("no trailing bytes");
        assert_eq!(design, back);
    }

    #[test]
    fn truncated_design_errors_cleanly() {
        let kernel = mvt_kernel();
        let design = HlsFlow::new()
            .run(&kernel, &Directives::new())
            .expect("synthesis");
        let mut e = Enc::new();
        enc_design(&mut e, &design);
        let bytes = e.into_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(dec_design(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }
}
