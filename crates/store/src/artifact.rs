//! The `.pgm` model artifact: named trained ensembles + metadata + an
//! embedded self-verification probe.
//!
//! An artifact is one `PGSTORE` container with three sections:
//!
//! * `meta` — [`ArtifactMeta`]: kernel, power target(s), a fingerprint of
//!   the training configuration, evaluation metrics and creation time;
//! * `ensembles` — one or more named [`Ensemble`]s (PowerGear saves
//!   `total` and `dynamic`);
//! * `probe` (optional) — a handful of [`PowerGraph`]s plus the bit
//!   patterns each ensemble predicted for them at save time. A fresh
//!   process can re-run the loaded ensembles on the stored graphs and
//!   compare bits, proving the load is exact without needing the original
//!   dataset.

use crate::codec::{dec_ensemble, dec_graph, enc_ensemble, enc_graph, Dec, Enc};
use crate::container::{Reader, Writer};
use crate::error::StoreError;
use pg_gnn::{Ensemble, TrainConfig};
use pg_graphcon::PowerGraph;
use std::path::Path;
// pg-lint: allow(wall_clock, reason = "import only; the single use site is the provenance timestamp annotated below")
use std::time::{SystemTime, UNIX_EPOCH};

/// Descriptive metadata stored alongside the weights.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArtifactMeta {
    /// Kernel(s) the model was trained on (comma-separated).
    pub kernel: String,
    /// Power target(s) covered (e.g. `total+dynamic`).
    pub target: String,
    /// Stable fingerprint of the training configuration (see
    /// [`train_fingerprint`]).
    pub train_fingerprint: u64,
    /// Evaluation metrics recorded at save time (name, value).
    pub metrics: Vec<(String, f64)>,
    /// Creation time, seconds since the Unix epoch (0 when unavailable).
    pub created_at_unix: u64,
    /// Version of the writing tool (crate version).
    pub tool_version: String,
    /// Free-form notes.
    pub notes: String,
}

impl ArtifactMeta {
    /// Metadata stamped with the current time and this crate's version.
    pub fn now(kernel: &str, target: &str) -> Self {
        ArtifactMeta {
            kernel: kernel.to_string(),
            target: target.to_string(),
            // pg-lint: allow(wall_clock, reason = "provenance timestamp in artifact metadata; excluded from the bit-exactness probe")
            created_at_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            ..ArtifactMeta::default()
        }
    }

    /// Looks up a recorded metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Stable fingerprint of a training configuration, recorded in the
/// metadata so a registry can distinguish artifacts trained with different
/// hyperparameters. Uses the `Debug` rendering, which covers every field.
pub fn train_fingerprint(cfg: &TrainConfig) -> u64 {
    pg_util::rng::hash64(format!("{cfg:?}").as_bytes())
}

/// A self-verification probe: input graphs plus each ensemble's exact
/// prediction bits at save time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeSet {
    /// Probe inputs.
    pub graphs: Vec<PowerGraph>,
    /// `(ensemble name, prediction bit patterns)` per stored ensemble.
    pub expected: Vec<(String, Vec<u64>)>,
}

impl ProbeSet {
    /// Captures a probe over `graphs` for every named ensemble. With no
    /// graphs the probe is trivially empty (and trivially verifies).
    pub fn capture(ensembles: &[(String, Ensemble)], graphs: &[PowerGraph]) -> Self {
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let expected = ensembles
            .iter()
            .map(|(name, ens)| {
                let bits = if refs.is_empty() {
                    Vec::new()
                } else {
                    ens.predict(&refs).iter().map(|v| v.to_bits()).collect()
                };
                (name.clone(), bits)
            })
            .collect();
        ProbeSet {
            graphs: graphs.to_vec(),
            expected,
        }
    }

    /// Re-runs every ensemble on the stored graphs and compares prediction
    /// bits with the values captured at save time.
    ///
    /// # Errors
    ///
    /// [`StoreError::VerifyFailed`] naming the first diverging ensemble
    /// and graph.
    pub fn verify(&self, ensembles: &[(String, Ensemble)]) -> Result<(), StoreError> {
        let refs: Vec<&PowerGraph> = self.graphs.iter().collect();
        for (name, expect) in &self.expected {
            let Some((_, ens)) = ensembles.iter().find(|(n, _)| n == name) else {
                return Err(StoreError::VerifyFailed {
                    detail: format!("probe references missing ensemble `{name}`"),
                });
            };
            if refs.is_empty() {
                continue;
            }
            let got: Vec<u64> = ens.predict(&refs).iter().map(|v| v.to_bits()).collect();
            if got.len() != expect.len() {
                return Err(StoreError::VerifyFailed {
                    detail: format!(
                        "ensemble `{name}`: probe has {} expectations, predicted {}",
                        expect.len(),
                        got.len()
                    ),
                });
            }
            for (i, (g, e)) in got.iter().zip(expect).enumerate() {
                if g != e {
                    return Err(StoreError::VerifyFailed {
                        detail: format!(
                            "ensemble `{name}`, probe graph {i}: predicted bits {g:016x}, \
                             saved bits {e:016x}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A complete model artifact: metadata, named ensembles and the optional
/// self-verification probe.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelArtifact {
    /// Descriptive metadata.
    pub meta: ArtifactMeta,
    /// Named trained ensembles, in save order.
    pub ensembles: Vec<(String, Ensemble)>,
    /// Optional self-verification probe.
    pub probe: Option<ProbeSet>,
}

impl ModelArtifact {
    /// The ensemble stored under `name`, if present.
    pub fn ensemble(&self, name: &str) -> Option<&Ensemble> {
        self.ensembles
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// Captures and embeds a probe over `graphs` (capped at `max` inputs).
    pub fn with_probe(mut self, graphs: &[PowerGraph], max: usize) -> Self {
        let take = graphs.len().min(max);
        self.probe = Some(ProbeSet::capture(&self.ensembles, &graphs[..take]));
        self
    }

    /// Serializes the artifact to container bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Enc::new();
        enc_meta(&mut meta, &self.meta);
        let mut ens = Enc::new();
        ens.u32(self.ensembles.len() as u32);
        for (name, e) in &self.ensembles {
            ens.str(name);
            enc_ensemble(&mut ens, e);
        }
        let mut w = Writer::new();
        w.section("meta", meta.into_bytes());
        w.section("ensembles", ens.into_bytes());
        if let Some(probe) = &self.probe {
            let mut p = Enc::new();
            p.u32(probe.graphs.len() as u32);
            for g in &probe.graphs {
                enc_graph(&mut p, g);
            }
            p.u32(probe.expected.len() as u32);
            for (name, bits) in &probe.expected {
                p.str(name);
                p.u32(bits.len() as u32);
                for &b in bits {
                    p.u64(b);
                }
            }
            w.section("probe", p.into_bytes());
        }
        w.to_bytes()
    }

    /// Writes the artifact to `path` (conventionally `*.pgm`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let bytes = self.to_bytes();
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Loads an artifact from container bytes.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from the container or the codecs.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        let r = Reader::from_bytes(bytes)?;
        let meta = dec_meta_section(&r)?;
        let ens_bytes = r.section("ensembles")?;
        let mut d = Dec::new(ens_bytes);
        let n = d.count(4, "ensemble group count")?;
        let mut ensembles = Vec::with_capacity(n);
        for _ in 0..n {
            let name = d.str("ensemble name")?;
            let e = dec_ensemble(&mut d)?;
            ensembles.push((name, e));
        }
        d.finish("ensembles section")?;
        let probe = if r.has_section("probe") {
            let mut d = Dec::new(r.section("probe")?);
            let ng = d.count(4, "probe graph count")?;
            let mut graphs = Vec::with_capacity(ng);
            for _ in 0..ng {
                graphs.push(dec_graph(&mut d)?);
            }
            let ne = d.count(4, "probe expectation count")?;
            let mut expected = Vec::with_capacity(ne);
            for _ in 0..ne {
                let name = d.str("probe ensemble name")?;
                let nb = d.count(8, "probe bits count")?;
                let mut bits = Vec::with_capacity(nb);
                for _ in 0..nb {
                    bits.push(d.u64("probe bits")?);
                }
                expected.push((name, bits));
            }
            d.finish("probe section")?;
            Some(ProbeSet { graphs, expected })
        } else {
            None
        };
        Ok(ModelArtifact {
            meta,
            ensembles,
            probe,
        })
    }

    /// Loads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from I/O, the container or the codecs.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        ModelArtifact::from_bytes(std::fs::read(path)?)
    }

    /// Runs the embedded probe (if any) against the loaded ensembles.
    ///
    /// # Errors
    ///
    /// [`StoreError::VerifyFailed`] when predictions diverge from the
    /// bits captured at save time.
    pub fn verify(&self) -> Result<(), StoreError> {
        match &self.probe {
            Some(p) => p.verify(&self.ensembles),
            None => Ok(()),
        }
    }
}

/// Reads only the `meta` section of the artifact at `path` — the registry
/// listing fast path (weights are not decoded).
///
/// # Errors
///
/// Any [`StoreError`] from I/O, the container or the metadata codec.
pub fn load_meta(path: impl AsRef<Path>) -> Result<ArtifactMeta, StoreError> {
    let r = Reader::open(path)?;
    dec_meta_section(&r)
}

fn dec_meta_section(r: &Reader) -> Result<ArtifactMeta, StoreError> {
    let mut d = Dec::new(r.section("meta")?);
    let meta = dec_meta(&mut d)?;
    d.finish("meta section")?;
    Ok(meta)
}

fn enc_meta(e: &mut Enc, m: &ArtifactMeta) {
    e.str(&m.kernel);
    e.str(&m.target);
    e.u64(m.train_fingerprint);
    e.u32(m.metrics.len() as u32);
    for (name, v) in &m.metrics {
        e.str(name);
        e.f64(*v);
    }
    e.u64(m.created_at_unix);
    e.str(&m.tool_version);
    e.str(&m.notes);
}

fn dec_meta(d: &mut Dec<'_>) -> Result<ArtifactMeta, StoreError> {
    let kernel = d.str("meta kernel")?;
    let target = d.str("meta target")?;
    let train_fingerprint = d.u64("meta fingerprint")?;
    let n = d.count(12, "meta metric count")?;
    let mut metrics = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str("metric name")?;
        let v = d.f64("metric value")?;
        metrics.push((name, v));
    }
    Ok(ArtifactMeta {
        kernel,
        target,
        train_fingerprint,
        metrics,
        created_at_unix: d.u64("meta created at")?,
        tool_version: d.str("meta tool version")?,
        notes: d.str("meta notes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_gnn::{ModelConfig, PowerModel};
    use pg_graphcon::Relation;
    use pg_util::Rng64;

    fn graph(seed: u64) -> PowerGraph {
        let mut rng = Rng64::new(seed);
        let nodes = 4 + rng.below(4);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "art".into(),
            design_id: format!("a{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne).map(|_| [rng.f32(), rng.f32(), 0.1, 0.2]).collect(),
            edge_rel: (0..ne)
                .map(|i| {
                    if i % 2 == 0 {
                        Relation::AA
                    } else {
                        Relation::NN
                    }
                })
                .collect(),
            meta: (0..10).map(|_| rng.f32()).collect(),
        }
    }

    fn artifact() -> ModelArtifact {
        let ens = |seed| Ensemble {
            models: vec![
                PowerModel::new(ModelConfig::hec(8), seed),
                PowerModel::new(ModelConfig::hec(8), seed + 1),
            ],
        };
        let mut meta = ArtifactMeta::now("mvt", "total+dynamic");
        meta.metrics.push(("total_val_mape".into(), 12.5));
        let graphs: Vec<PowerGraph> = (0..4).map(graph).collect();
        ModelArtifact {
            meta,
            ensembles: vec![("total".into(), ens(1)), ("dynamic".into(), ens(10))],
            probe: None,
        }
        .with_probe(&graphs, 3)
    }

    #[test]
    fn roundtrip_and_self_verify() {
        let a = artifact();
        let bytes = a.to_bytes();
        let b = ModelArtifact::from_bytes(bytes).unwrap();
        assert_eq!(a, b);
        b.verify().expect("probe must verify after load");
        assert_eq!(b.probe.as_ref().unwrap().graphs.len(), 3);
        assert_eq!(b.meta.metric("total_val_mape"), Some(12.5));
        assert!(b.ensemble("dynamic").is_some());
        assert!(b.ensemble("nope").is_none());
    }

    #[test]
    fn tampered_weights_fail_probe_verification() {
        let a = artifact();
        let mut b = ModelArtifact::from_bytes(a.to_bytes()).unwrap();
        // perturb one weight of the total ensemble
        b.ensembles[0].1.models[0].store.get_mut(0).data[0] += 0.5;
        assert!(matches!(b.verify(), Err(StoreError::VerifyFailed { .. })));
    }

    #[test]
    fn meta_fast_path_matches_full_load() {
        let a = artifact();
        let dir = std::env::temp_dir().join(format!("pg_store_meta_{}", std::process::id()));
        let path = dir.join("m.pgm");
        a.save(&path).unwrap();
        let meta = load_meta(&path).unwrap();
        assert_eq!(meta, a.meta);
        let full = ModelArtifact::load(&path).unwrap();
        assert_eq!(full, a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = TrainConfig::quick(ModelConfig::hec(16));
        let mut b = a.clone();
        b.epochs += 1;
        assert_ne!(train_fingerprint(&a), train_fingerprint(&b));
        assert_eq!(train_fingerprint(&a), train_fingerprint(&a.clone()));
    }

    #[test]
    fn fingerprint_distinguishes_zoo_axes() {
        use pg_gnn::Pool;
        let zoo = [
            ModelConfig::hec(16),
            ModelConfig::hec(16).with_pool(Pool::Mean),
            ModelConfig::hec(16).with_pool(Pool::Max),
            ModelConfig::hec(16).with_layers(2),
            ModelConfig::hec(16).with_layers(4),
            ModelConfig::hec(16).with_heads(2),
            ModelConfig::hec(16).with_heads(4),
        ];
        let mut prints: Vec<u64> = zoo
            .iter()
            .map(|m| train_fingerprint(&TrainConfig::quick(m.clone())))
            .collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), zoo.len(), "zoo fingerprints collide");
    }
}
