//! A directory-backed registry of trained model artifacts.
//!
//! Layout: one `<name>.pgm` container per published model inside a root
//! directory. The name is the registry key; all descriptive metadata
//! (kernel, target, fingerprint, metrics, creation time) lives *inside*
//! the artifact's `meta` section, so a registry can be rebuilt from the
//! files alone — there is no separate index to corrupt or desynchronize.

use crate::artifact::{load_meta, ArtifactMeta, ModelArtifact};
use crate::error::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// File extension used for published artifacts.
pub const ARTIFACT_EXT: &str = "pgm";

/// One registry row: an artifact name plus its metadata (or the error that
/// kept the metadata from loading — listings must not die on one corrupt
/// file).
#[derive(Debug)]
pub struct RegistryEntry {
    /// Registry key (file stem).
    pub name: String,
    /// Full path of the artifact file.
    pub path: PathBuf,
    /// Decoded metadata, or the load error for a damaged artifact.
    pub meta: Result<ArtifactMeta, StoreError>,
}

/// A directory of versioned, self-describing model artifacts.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) the registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path an artifact named `name` is (or would be) stored at.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for names that would escape the registry
    /// directory (path separators, `..`, empty).
    pub fn path_of(&self, name: &str) -> Result<PathBuf, StoreError> {
        if name.is_empty()
            || name == ".."
            || name.contains('/')
            || name.contains('\\')
            || name.contains('\0')
        {
            return Err(StoreError::corrupt(format!(
                "invalid registry name `{name}`"
            )));
        }
        Ok(self.root.join(format!("{name}.{ARTIFACT_EXT}")))
    }

    /// Publishes `artifact` under `name`, overwriting any previous version,
    /// and returns the file path.
    ///
    /// # Errors
    ///
    /// Invalid names and filesystem errors.
    pub fn publish(&self, name: &str, artifact: &ModelArtifact) -> Result<PathBuf, StoreError> {
        let path = self.path_of(name)?;
        artifact.save(&path)?;
        Ok(path)
    }

    /// Loads the artifact published under `name`.
    ///
    /// # Errors
    ///
    /// Invalid names, I/O errors and any decode error.
    pub fn load(&self, name: &str) -> Result<ModelArtifact, StoreError> {
        ModelArtifact::load(self.path_of(name)?)
    }

    /// Reads only the metadata of the artifact published under `name`.
    ///
    /// # Errors
    ///
    /// Invalid names, I/O errors and any decode error.
    pub fn meta(&self, name: &str) -> Result<ArtifactMeta, StoreError> {
        load_meta(self.path_of(name)?)
    }

    /// Removes the artifact published under `name`.
    ///
    /// # Errors
    ///
    /// Invalid names and filesystem errors (including "not found").
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        fs::remove_file(self.path_of(name)?)?;
        Ok(())
    }

    /// Lists every artifact in the registry, sorted by name. Damaged
    /// artifacts appear with their load error instead of being skipped.
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors.
    pub fn list(&self) -> Result<Vec<RegistryEntry>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ARTIFACT_EXT) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            out.push(RegistryEntry {
                name: name.to_string(),
                meta: load_meta(&path),
                path,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_gnn::{Ensemble, ModelConfig, PowerModel};

    fn tmp_registry(tag: &str) -> ModelRegistry {
        let root = std::env::temp_dir().join(format!("pg_registry_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        ModelRegistry::open(root).unwrap()
    }

    fn artifact(kernel: &str) -> ModelArtifact {
        ModelArtifact {
            meta: ArtifactMeta::now(kernel, "dynamic"),
            ensembles: vec![(
                "dynamic".into(),
                Ensemble {
                    models: vec![PowerModel::new(ModelConfig::hec(8), 7)],
                },
            )],
            probe: None,
        }
    }

    #[test]
    fn publish_list_load_remove() {
        let reg = tmp_registry("plr");
        reg.publish("mvt-v1", &artifact("mvt")).unwrap();
        reg.publish("bicg-v1", &artifact("bicg")).unwrap();
        let listed = reg.list().unwrap();
        assert_eq!(
            listed.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["bicg-v1", "mvt-v1"]
        );
        assert_eq!(listed[1].meta.as_ref().unwrap().kernel, "mvt");
        let loaded = reg.load("mvt-v1").unwrap();
        assert_eq!(loaded.meta.kernel, "mvt");
        reg.remove("mvt-v1").unwrap();
        assert_eq!(reg.list().unwrap().len(), 1);
        fs::remove_dir_all(reg.root()).ok();
    }

    #[test]
    fn damaged_artifact_listed_with_error() {
        let reg = tmp_registry("dmg");
        reg.publish("good", &artifact("mvt")).unwrap();
        fs::write(reg.root().join("bad.pgm"), b"not a container").unwrap();
        let listed = reg.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert!(listed[0].meta.is_err(), "bad sorts first");
        assert!(listed[1].meta.is_ok());
        fs::remove_dir_all(reg.root()).ok();
    }

    #[test]
    fn path_traversal_rejected() {
        let reg = tmp_registry("sec");
        for bad in ["", "..", "a/b", "a\\b", "x\0y"] {
            assert!(reg.path_of(bad).is_err(), "{bad:?} must be rejected");
        }
        fs::remove_dir_all(reg.root()).ok();
    }

    #[test]
    fn republish_overwrites() {
        let reg = tmp_registry("ovr");
        reg.publish("m", &artifact("mvt")).unwrap();
        reg.publish("m", &artifact("gemm")).unwrap();
        assert_eq!(reg.meta("m").unwrap().kernel, "gemm");
        assert_eq!(reg.list().unwrap().len(), 1);
        fs::remove_dir_all(reg.root()).ok();
    }
}
