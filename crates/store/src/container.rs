//! The `PGSTORE` binary container: magic + version + section table + CRC.
//!
//! See the crate-level docs for the full byte layout. [`Writer`] assembles
//! named sections in memory and flushes them with a table and per-section
//! CRC-32 checksums; [`Reader`] parses and bounds-checks the table up
//! front, then verifies each section's checksum on access. Both sides are
//! pure little-endian byte shuffling — no serde, no unsafe, no external
//! dependencies.

use crate::error::StoreError;
use std::fs;
use std::path::Path;

/// First eight bytes of every container.
pub const MAGIC: [u8; 8] = *b"PGSTORE\0";

/// Highest container format version this build reads and the version it
/// writes.
pub const FORMAT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Builds a container in memory as an ordered list of named sections.
#[derive(Debug, Default)]
pub struct Writer {
    sections: Vec<(String, Vec<u8>)>,
}

impl Writer {
    /// An empty container.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends a named section. Names must be unique within a container;
    /// a repeated name replaces the previous payload.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
        self
    }

    /// Serializes the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Header size: magic + version + count, then per section
        // name_len(u16) + name + offset(u64) + len(u64) + crc(u32).
        let mut header_len = MAGIC.len() + 4 + 4;
        for (name, _) in &self.sections {
            header_len += 2 + name.len() + 8 + 8 + 4;
        }
        let mut out = Vec::with_capacity(
            header_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = header_len as u64;
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        debug_assert_eq!(out.len(), header_len);
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the container to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, self.to_bytes())?;
        Ok(())
    }
}

/// One entry of a parsed section table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SectionEntry {
    name: String,
    offset: usize,
    len: usize,
    crc: u32,
}

/// Parses a container and serves CRC-verified section payloads.
#[derive(Debug)]
pub struct Reader {
    bytes: Vec<u8>,
    entries: Vec<SectionEntry>,
    /// Format version the file declares.
    pub version: u32,
}

impl Reader {
    /// Parses a container from bytes, validating magic, version and the
    /// structural integrity of the section table (payload bounds).
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`] or [`StoreError::Corrupt`] on a malformed
    /// header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        if bytes.len() < MAGIC.len() {
            return Err(StoreError::BadMagic {
                found: bytes.clone(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic {
                found: bytes[..MAGIC.len()].to_vec(),
            });
        }
        let mut pos = MAGIC.len();
        let version = read_u32(&bytes, &mut pos, "format version")?;
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = read_u32(&bytes, &mut pos, "section count")? as usize;
        let mut entries = Vec::new();
        for _ in 0..count {
            let name_len = read_u16(&bytes, &mut pos, "section name length")? as usize;
            if pos + name_len > bytes.len() {
                return Err(StoreError::Truncated {
                    context: "section name",
                });
            }
            let name = String::from_utf8(bytes[pos..pos + name_len].to_vec())
                .map_err(|_| StoreError::corrupt("section name is not UTF-8"))?;
            pos += name_len;
            let offset = read_u64(&bytes, &mut pos, "section offset")?;
            let len = read_u64(&bytes, &mut pos, "section length")?;
            let crc = read_u32(&bytes, &mut pos, "section crc")?;
            let (offset, len) = (offset as usize, len as usize);
            if offset.checked_add(len).is_none_or(|end| end > bytes.len()) {
                return Err(StoreError::Truncated {
                    context: "section payload",
                });
            }
            entries.push(SectionEntry {
                name,
                offset,
                len,
                crc,
            });
        }
        Ok(Reader {
            bytes,
            entries,
            version,
        })
    }

    /// Reads and parses the container at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and everything
    /// [`Reader::from_bytes`] reports.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Reader::from_bytes(fs::read(path)?)
    }

    /// Section names in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// `true` when the container holds a section called `name`.
    pub fn has_section(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The payload of section `name`, CRC-verified.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingSection`] when absent,
    /// [`StoreError::CrcMismatch`] when the stored checksum does not match
    /// the bytes on disk.
    pub fn section(&self, name: &'static str) -> Result<&[u8], StoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or(StoreError::MissingSection { section: name })?;
        let payload = &self.bytes[entry.offset..entry.offset + entry.len];
        let actual = crc32(payload);
        if actual != entry.crc {
            return Err(StoreError::CrcMismatch {
                section: entry.name.clone(),
                expected: entry.crc,
                actual,
            });
        }
        Ok(payload)
    }
}

/// Reads `N` bytes at `*pos` into a fixed array, advancing the cursor.
/// The bounds check makes the copy infallible — no panicking conversion.
fn read_word<const N: usize>(
    bytes: &[u8],
    pos: &mut usize,
    context: &'static str,
) -> Result<[u8; N], StoreError> {
    let end = *pos + N;
    if end > bytes.len() {
        return Err(StoreError::Truncated { context });
    }
    let mut a = [0u8; N];
    a.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(a)
}

fn read_u16(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<u16, StoreError> {
    Ok(u16::from_le_bytes(read_word(bytes, pos, context)?))
}

fn read_u32(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<u32, StoreError> {
    Ok(u32::from_le_bytes(read_word(bytes, pos, context)?))
}

fn read_u64(bytes: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, StoreError> {
    Ok(u64::from_le_bytes(read_word(bytes, pos, context)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_sections() {
        let mut w = Writer::new();
        w.section("alpha", vec![1, 2, 3]);
        w.section("beta", vec![]);
        w.section("gamma", (0..255).collect());
        let r = Reader::from_bytes(w.to_bytes()).unwrap();
        assert_eq!(r.version, FORMAT_VERSION);
        assert_eq!(r.section_names(), vec!["alpha", "beta", "gamma"]);
        assert_eq!(r.section("alpha").unwrap(), &[1, 2, 3]);
        assert_eq!(r.section("beta").unwrap(), &[] as &[u8]);
        assert_eq!(r.section("gamma").unwrap().len(), 255);
        assert!(matches!(
            r.section("delta"),
            Err(StoreError::MissingSection { section: "delta" })
        ));
    }

    #[test]
    fn repeated_section_name_replaces() {
        let mut w = Writer::new();
        w.section("s", vec![1]);
        w.section("s", vec![2, 3]);
        let r = Reader::from_bytes(w.to_bytes()).unwrap();
        assert_eq!(r.section_names().len(), 1);
        assert_eq!(r.section("s").unwrap(), &[2, 3]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Writer::new().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Reader::from_bytes(bytes),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            Reader::from_bytes(vec![1, 2]),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Writer::new().to_bytes();
        let v = (FORMAT_VERSION + 1).to_le_bytes();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v);
        assert!(matches!(
            Reader::from_bytes(bytes),
            Err(StoreError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let mut w = Writer::new();
        w.section("payload", (0..64).collect());
        let full = w.to_bytes();
        for cut in 0..full.len() {
            let r = Reader::from_bytes(full[..cut].to_vec());
            match r {
                Err(_) => {}
                Ok(reader) => {
                    // Header happened to parse; the payload access must
                    // still fail cleanly (its bytes are out of bounds).
                    assert!(reader.section("payload").is_err(), "cut at {cut}");
                }
            }
        }
    }

    #[test]
    fn payload_corruption_caught_by_crc() {
        let mut w = Writer::new();
        w.section("data", (0..32).collect());
        let mut bytes = w.to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip a payload byte
        let r = Reader::from_bytes(bytes).unwrap();
        assert!(matches!(
            r.section("data"),
            Err(StoreError::CrcMismatch { .. })
        ));
    }
}
