//! Little-endian encode/decode primitives and codecs for the model-side
//! types: matrices, parameter stores, model configurations, trained
//! [`PowerModel`]s, [`Ensemble`]s, power graphs and HLS reports.
//!
//! Floating-point values round-trip through their IEEE bit patterns
//! (`to_bits`/`from_bits`), so a loaded model is *bit-exact*: its
//! predictions are identical, bit for bit, to the in-memory ensemble that
//! was saved. Every decoder validates lengths before allocating and
//! returns [`StoreError`] instead of panicking on malformed input.

use crate::error::StoreError;
use pg_gnn::{Arch, Ensemble, ModelConfig, Pool, PowerModel};
use pg_graphcon::{PowerGraph, Relation};
use pg_hls::{Directives, HlsReport};
use pg_tensor::Matrix;

/// Byte-buffer encoder (little-endian throughout).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finishes encoding, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f32` as its IEEE bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Byte-buffer decoder over a borrowed payload.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when trailing bytes remain.
    pub fn finish(self, context: &str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "{context}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a fixed-width little-endian word into an array without any
    /// panicking conversion: `take` already guarantees the slice length.
    fn word<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], StoreError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N, context)?);
        Ok(a)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.word(context)?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.word(context)?))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.word(context)?))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that cannot fit.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, StoreError> {
        usize::try_from(self.u64(context)?)
            .map_err(|_| StoreError::corrupt(format!("{context}: value exceeds usize")))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn f32(&mut self, context: &'static str) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32(context)?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, StoreError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(StoreError::corrupt(format!("{context}: bad bool byte {v}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, StoreError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{context}: invalid UTF-8")))
    }

    /// Reads a `u32` element count, bounding it by the bytes remaining so
    /// corrupt counts can never trigger pathological allocations.
    pub fn count(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, StoreError> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(StoreError::corrupt(format!(
                "{context}: count {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Matrices and parameter stores

/// Encodes a dense matrix (shape + raw f32 bit patterns).
pub fn enc_matrix(e: &mut Enc, m: &Matrix) {
    e.u32(m.rows as u32);
    e.u32(m.cols as u32);
    for &v in &m.data {
        e.f32(v);
    }
}

/// Decodes a matrix written by [`enc_matrix`].
///
/// # Errors
///
/// [`StoreError`] on truncation or an inconsistent shape.
pub fn dec_matrix(d: &mut Dec<'_>) -> Result<Matrix, StoreError> {
    let rows = d.u32("matrix rows")? as usize;
    let cols = d.u32("matrix cols")? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| StoreError::corrupt("matrix shape overflows"))?;
    if n.saturating_mul(4) > d.remaining() {
        return Err(StoreError::corrupt(format!(
            "matrix {rows}x{cols} larger than remaining payload"
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(d.f32("matrix data")?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

// ---------------------------------------------------------------------------
// Model configuration

fn arch_tag(a: Arch) -> u8 {
    match a {
        Arch::Hec => 0,
        Arch::Gcn => 1,
        Arch::Sage => 2,
        Arch::GraphConv => 3,
        Arch::Gine => 4,
    }
}

fn arch_from_tag(t: u8) -> Result<Arch, StoreError> {
    Ok(match t {
        0 => Arch::Hec,
        1 => Arch::Gcn,
        2 => Arch::Sage,
        3 => Arch::GraphConv,
        4 => Arch::Gine,
        _ => return Err(StoreError::corrupt(format!("unknown arch tag {t}"))),
    })
}

fn pool_tag(p: Pool) -> u8 {
    match p {
        Pool::Add => 0,
        Pool::Mean => 1,
        Pool::Max => 2,
    }
}

fn pool_from_tag(t: u8) -> Result<Pool, StoreError> {
    Ok(match t {
        0 => Pool::Add,
        1 => Pool::Mean,
        2 => Pool::Max,
        _ => return Err(StoreError::corrupt(format!("unknown pool tag {t}"))),
    })
}

/// Encodes a [`ModelConfig`].
pub fn enc_model_config(e: &mut Enc, c: &ModelConfig) {
    e.u8(arch_tag(c.arch));
    e.u32(c.hidden as u32);
    e.u32(c.layers as u32);
    e.u8(pool_tag(c.pool));
    e.u32(c.heads as u32);
    e.f32(c.dropout);
    e.bool(c.use_edge_feats);
    e.bool(c.directed);
    e.bool(c.heterogeneous);
    e.bool(c.use_metadata);
    e.u32(c.node_dim as u32);
    e.u32(c.meta_dim as u32);
}

/// Decodes a [`ModelConfig`].
///
/// Dimensions are sanity-bounded (hidden/widths ≤ 4096, layers ≤ 64) so a
/// corrupt config can never drive [`PowerModel::new`] into a pathological
/// allocation during [`dec_model`].
///
/// # Errors
///
/// [`StoreError`] on truncation, unknown enum tags, or out-of-range
/// dimensions.
pub fn dec_model_config(d: &mut Dec<'_>) -> Result<ModelConfig, StoreError> {
    let bounded = |v: u32, cap: u32, what: &str| {
        if v > cap {
            Err(StoreError::corrupt(format!(
                "model config {what} {v} exceeds cap {cap}"
            )))
        } else {
            Ok(v as usize)
        }
    };
    Ok(ModelConfig {
        arch: arch_from_tag(d.u8("arch")?)?,
        hidden: bounded(d.u32("hidden")?, 4096, "hidden width")?,
        layers: bounded(d.u32("layers")?, 64, "layer count")?,
        pool: pool_from_tag(d.u8("pool")?)?,
        heads: bounded(d.u32("heads")?, 64, "attention heads")?,
        dropout: d.f32("dropout")?,
        use_edge_feats: d.bool("use_edge_feats")?,
        directed: d.bool("directed")?,
        heterogeneous: d.bool("heterogeneous")?,
        use_metadata: d.bool("use_metadata")?,
        node_dim: bounded(d.u32("node_dim")?, 4096, "node dim")?,
        meta_dim: bounded(d.u32("meta_dim")?, 4096, "meta dim")?,
    })
}

// ---------------------------------------------------------------------------
// Trained models and ensembles

/// Encodes a trained [`PowerModel`]: config, output normalization and every
/// named parameter matrix.
pub fn enc_model(e: &mut Enc, m: &PowerModel) {
    enc_model_config(e, &m.config);
    e.f32(m.target_scale);
    e.f32(m.target_shift);
    e.u32(m.store.len() as u32);
    for slot in 0..m.store.len() {
        e.str(m.store.name(slot));
        enc_matrix(e, m.store.get(slot));
    }
}

/// Decodes a [`PowerModel`] written by [`enc_model`].
///
/// The parameter *layout* is rebuilt deterministically from the stored
/// config via [`PowerModel::new`]; the saved matrices then overwrite the
/// fresh initialization slot by slot. Names and shapes are cross-checked so
/// a config/weights mismatch surfaces as a typed error instead of silently
/// mis-assigning tensors.
///
/// # Errors
///
/// [`StoreError`] on truncation, unknown tags, or weights that do not
/// match the layout implied by the stored config.
pub fn dec_model(d: &mut Dec<'_>) -> Result<PowerModel, StoreError> {
    let config = dec_model_config(d)?;
    let target_scale = d.f32("target_scale")?;
    let target_shift = d.f32("target_shift")?;
    let mut model = PowerModel::new(config, 0);
    model.target_scale = target_scale;
    model.target_shift = target_shift;
    let n = d.count(8, "param count")?;
    if n != model.store.len() {
        return Err(StoreError::corrupt(format!(
            "model has {n} stored params, config implies {}",
            model.store.len()
        )));
    }
    for slot in 0..n {
        let name = d.str("param name")?;
        if name != model.store.name(slot) {
            return Err(StoreError::corrupt(format!(
                "param {slot} named `{name}`, config implies `{}`",
                model.store.name(slot)
            )));
        }
        let m = dec_matrix(d)?;
        let expect = model.store.get(slot);
        if (m.rows, m.cols) != (expect.rows, expect.cols) {
            return Err(StoreError::corrupt(format!(
                "param `{name}` is {}x{}, config implies {}x{}",
                m.rows, m.cols, expect.rows, expect.cols
            )));
        }
        *model.store.get_mut(slot) = m;
    }
    Ok(model)
}

/// Encodes an [`Ensemble`] (member count + members).
pub fn enc_ensemble(e: &mut Enc, ens: &Ensemble) {
    e.u32(ens.models.len() as u32);
    for m in &ens.models {
        enc_model(e, m);
    }
}

/// Decodes an [`Ensemble`] written by [`enc_ensemble`].
///
/// # Errors
///
/// [`StoreError`] as for [`dec_model`].
pub fn dec_ensemble(d: &mut Dec<'_>) -> Result<Ensemble, StoreError> {
    let n = d.count(1, "ensemble size")?;
    let mut models = Vec::with_capacity(n);
    for _ in 0..n {
        models.push(dec_model(d)?);
    }
    Ok(Ensemble { models })
}

// ---------------------------------------------------------------------------
// Power graphs

fn relation_tag(r: Relation) -> u8 {
    match r {
        Relation::AA => 0,
        Relation::AN => 1,
        Relation::NA => 2,
        Relation::NN => 3,
    }
}

fn relation_from_tag(t: u8) -> Result<Relation, StoreError> {
    Ok(match t {
        0 => Relation::AA,
        1 => Relation::AN,
        2 => Relation::NA,
        3 => Relation::NN,
        _ => return Err(StoreError::corrupt(format!("unknown relation tag {t}"))),
    })
}

/// Encodes a [`PowerGraph`] (features as raw f32 bit patterns).
pub fn enc_graph(e: &mut Enc, g: &PowerGraph) {
    e.str(&g.kernel);
    e.str(&g.design_id);
    e.u32(g.num_nodes as u32);
    e.u32(g.node_feats.len() as u32);
    for &v in &g.node_feats {
        e.f32(v);
    }
    e.u32(g.edges.len() as u32);
    for &(s, t) in &g.edges {
        e.u32(s);
        e.u32(t);
    }
    for f in &g.edge_feats {
        for &v in f {
            e.f32(v);
        }
    }
    for &r in &g.edge_rel {
        e.u8(relation_tag(r));
    }
    e.u32(g.meta.len() as u32);
    for &v in &g.meta {
        e.f32(v);
    }
}

/// Decodes a [`PowerGraph`] written by [`enc_graph`].
///
/// # Errors
///
/// [`StoreError`] on truncation or inconsistent counts.
pub fn dec_graph(d: &mut Dec<'_>) -> Result<PowerGraph, StoreError> {
    let kernel = d.str("graph kernel")?;
    let design_id = d.str("graph design id")?;
    let num_nodes = d.u32("graph node count")? as usize;
    let nf = d.count(4, "node feature count")?;
    let mut node_feats = Vec::with_capacity(nf);
    for _ in 0..nf {
        node_feats.push(d.f32("node feature")?);
    }
    let ne = d.count(8, "edge count")?;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let s = d.u32("edge src")?;
        let t = d.u32("edge dst")?;
        edges.push((s, t));
    }
    let mut edge_feats = Vec::with_capacity(ne);
    for _ in 0..ne {
        let mut f = [0.0f32; 4];
        for v in &mut f {
            *v = d.f32("edge feature")?;
        }
        edge_feats.push(f);
    }
    let mut edge_rel = Vec::with_capacity(ne);
    for _ in 0..ne {
        edge_rel.push(relation_from_tag(d.u8("edge relation")?)?);
    }
    let nm = d.count(4, "meta feature count")?;
    let mut meta = Vec::with_capacity(nm);
    for _ in 0..nm {
        meta.push(d.f32("meta feature")?);
    }
    let graph = PowerGraph {
        kernel,
        design_id,
        num_nodes,
        node_feats,
        edges,
        edge_feats,
        edge_rel,
        meta,
    };
    // A CRC-valid but internally inconsistent graph (foreign writer,
    // crafted file) must surface as a typed error here — downstream batch
    // assembly indexes node/edge buffers and would panic on it otherwise.
    graph
        .validate()
        .map_err(|e| StoreError::corrupt(format!("graph `{}`: {e}", graph.design_id)))?;
    Ok(graph)
}

// ---------------------------------------------------------------------------
// HLS reports and directives

/// Encodes an [`HlsReport`].
pub fn enc_report(e: &mut Enc, r: &HlsReport) {
    e.u32(r.lut);
    e.u32(r.ff);
    e.u32(r.dsp);
    e.u32(r.bram);
    e.u64(r.latency_cycles);
    e.f64(r.clock_ns);
}

/// Decodes an [`HlsReport`].
///
/// # Errors
///
/// [`StoreError::Truncated`] when the payload is short.
pub fn dec_report(d: &mut Dec<'_>) -> Result<HlsReport, StoreError> {
    Ok(HlsReport {
        lut: d.u32("report lut")?,
        ff: d.u32("report ff")?,
        dsp: d.u32("report dsp")?,
        bram: d.u32("report bram")?,
        latency_cycles: d.u64("report latency")?,
        clock_ns: d.f64("report clock")?,
    })
}

/// Encodes a [`Directives`] configuration (canonical form: only effective
/// entries — enabled pipelines, factors above one — are stored, exactly the
/// entries that feed `Directives::id()`).
pub fn enc_directives(e: &mut Enc, dir: &Directives) {
    let pipes: Vec<&str> = dir.pipelined_loops().collect();
    e.u32(pipes.len() as u32);
    for l in pipes {
        e.str(l);
    }
    let unrolls: Vec<(&str, usize)> = dir.unrolled_loops().collect();
    e.u32(unrolls.len() as u32);
    for (l, k) in unrolls {
        e.str(l);
        e.u32(k as u32);
    }
    let parts: Vec<(&str, usize)> = dir.partitioned_arrays().collect();
    e.u32(parts.len() as u32);
    for (a, k) in parts {
        e.str(a);
        e.u32(k as u32);
    }
}

/// Decodes a [`Directives`] configuration written by [`enc_directives`].
///
/// # Errors
///
/// [`StoreError`] on truncation or zero factors.
pub fn dec_directives(d: &mut Dec<'_>) -> Result<Directives, StoreError> {
    let mut out = Directives::new();
    let np = d.count(4, "pipeline count")?;
    for _ in 0..np {
        let l = d.str("pipeline label")?;
        out.pipeline(&l);
    }
    let nu = d.count(8, "unroll count")?;
    for _ in 0..nu {
        let l = d.str("unroll label")?;
        let k = d.u32("unroll factor")? as usize;
        if k == 0 {
            return Err(StoreError::corrupt("unroll factor 0"));
        }
        out.unroll(&l, k);
    }
    let na = d.count(8, "partition count")?;
    for _ in 0..na {
        let a = d.str("partition array")?;
        let k = d.u32("partition factor")? as usize;
        if k == 0 {
            return Err(StoreError::corrupt("partition factor 0"));
        }
        out.partition(&a, k);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_util::Rng64;

    fn graph(seed: u64) -> PowerGraph {
        let mut rng = Rng64::new(seed);
        let nodes = 4 + rng.below(5);
        let f = PowerGraph::NODE_FEATS;
        let mut node_feats = vec![0.0f32; nodes * f];
        for n in 0..nodes {
            node_feats[n * f + rng.below(5)] = 1.0;
        }
        let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
        let ne = edges.len();
        PowerGraph {
            kernel: "codec".into(),
            design_id: format!("c{seed}"),
            num_nodes: nodes,
            node_feats,
            edges,
            edge_feats: (0..ne).map(|_| [rng.f32(), rng.f32(), 0.2, 0.1]).collect(),
            edge_rel: (0..ne)
                .map(|i| match i % 4 {
                    0 => Relation::AA,
                    1 => Relation::AN,
                    2 => Relation::NA,
                    _ => Relation::NN,
                })
                .collect(),
            meta: (0..10).map(|_| rng.f32()).collect(),
        }
    }

    #[test]
    fn matrix_roundtrip_is_bit_exact() {
        let mut rng = Rng64::new(3);
        let m = pg_tensor::init::glorot(7, 5, &mut rng);
        let mut e = Enc::new();
        enc_matrix(&mut e, &m);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_matrix(&mut d).unwrap();
        d.finish("matrix").unwrap();
        assert_eq!(m, back);
        let a: Vec<u32> = m.data.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn model_roundtrip_predicts_identically() {
        for cfg in [
            ModelConfig::hec(12),
            ModelConfig::baseline(Arch::Gcn, 8),
            ModelConfig::baseline(Arch::Gine, 8),
            ModelConfig::hec(12).with_pool(Pool::Mean),
            ModelConfig::hec(12).with_pool(Pool::Max).with_layers(2),
            ModelConfig::hec(12).with_heads(2),
        ] {
            let mut m = PowerModel::new(cfg, 9);
            m.target_scale = 0.731;
            m.target_shift = 0.25;
            let mut e = Enc::new();
            enc_model(&mut e, &m);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            let back = dec_model(&mut d).unwrap();
            d.finish("model").unwrap();
            let graphs: Vec<PowerGraph> = (0..5).map(graph).collect();
            let refs: Vec<&PowerGraph> = graphs.iter().collect();
            let a: Vec<u64> = m.predict(&refs).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = back.predict(&refs).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ensemble_roundtrip() {
        let ens = Ensemble {
            models: (0..3)
                .map(|i| PowerModel::new(ModelConfig::hec(8), i))
                .collect(),
        };
        let mut e = Enc::new();
        enc_ensemble(&mut e, &ens);
        let bytes = e.into_bytes();
        let back = dec_ensemble(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.models.len(), 3);
        let graphs: Vec<PowerGraph> = (0..4).map(graph).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        assert_eq!(ens.predict(&refs), back.predict(&refs));
    }

    #[test]
    fn model_config_zoo_axes_roundtrip_exactly() {
        for cfg in [
            ModelConfig::hec(16),
            ModelConfig::hec(16).with_pool(Pool::Mean),
            ModelConfig::hec(16).with_pool(Pool::Max),
            ModelConfig::hec(16).with_layers(5).with_heads(4),
            ModelConfig::baseline(Arch::Sage, 8).with_pool(Pool::Max),
        ] {
            let mut e = Enc::new();
            enc_model_config(&mut e, &cfg);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_model_config(&mut d).unwrap(), cfg);
            d.finish("model config").unwrap();
        }
    }

    #[test]
    fn graph_roundtrip_exact() {
        let g = graph(11);
        let mut e = Enc::new();
        enc_graph(&mut e, &g);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(dec_graph(&mut d).unwrap(), g);
        d.finish("graph").unwrap();
    }

    #[test]
    fn directives_roundtrip_preserves_id() {
        let mut dir = Directives::new();
        dir.pipeline("i").unroll("j", 4).partition("A", 2);
        let mut e = Enc::new();
        enc_directives(&mut e, &dir);
        let bytes = e.into_bytes();
        let back = dec_directives(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.id(), dir.id());
        assert_eq!(back, dir);
    }

    #[test]
    fn corrupt_model_reports_typed_errors() {
        let m = PowerModel::new(ModelConfig::hec(8), 1);
        let mut e = Enc::new();
        enc_model(&mut e, &m);
        let bytes = e.into_bytes();
        // truncations anywhere must error, never panic
        for cut in 0..bytes.len().min(200) {
            assert!(dec_model(&mut Dec::new(&bytes[..cut])).is_err());
        }
        // bad arch tag
        let mut bad = bytes.clone();
        bad[0] = 250;
        assert!(matches!(
            dec_model(&mut Dec::new(&bad)),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn internally_inconsistent_graph_is_rejected() {
        // CRC-valid but structurally broken graphs (foreign writer) must
        // be typed errors, not later panics in batch assembly.
        let mut g = graph(5);
        g.num_nodes += 3; // node_feats no longer matches
        let mut e = Enc::new();
        enc_graph(&mut e, &g);
        let bytes = e.into_bytes();
        assert!(matches!(
            dec_graph(&mut Dec::new(&bytes)),
            Err(StoreError::Corrupt { .. })
        ));

        let mut g = graph(6);
        g.edges[0].1 = 10_000; // edge endpoint out of range
        let mut e = Enc::new();
        enc_graph(&mut e, &g);
        let bytes = e.into_bytes();
        assert!(matches!(
            dec_graph(&mut Dec::new(&bytes)),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn counts_are_bounded_by_payload() {
        // a u32 count of u32::MAX with a tiny payload must not allocate
        let mut e = Enc::new();
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            d.count(4, "bounded"),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
