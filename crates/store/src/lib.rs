//! `pg_store` — versioned, checksummed persistence for everything the
//! PowerGear pipeline trains or synthesizes.
//!
//! Nothing upstream of this crate survives a process exit: ensembles are
//! retrained per invocation and the `HlsCache` is memory-only. PowerGear's
//! deployment story (like HL-Pow's before it) is *train once, estimate
//! many* — this crate supplies the missing persistence layer, hand-rolled
//! because the build environment has no crates-registry access (no serde):
//!
//! * [`container`] — the `PGSTORE` binary container;
//! * [`codec`] — little-endian codecs for matrices, model configs, trained
//!   [`pg_gnn::PowerModel`]s/[`pg_gnn::Ensemble`]s, power graphs, HLS
//!   reports and directives;
//! * [`design`] — a full [`pg_hls::HlsDesign`] codec (IR, schedule,
//!   binding, FSMD, report, arrays, FU library) backing `HlsCache`
//!   spill/restore in `pg_datasets`;
//! * [`artifact`] — the `.pgm` model artifact: named ensembles + metadata
//!   + an embedded bit-exactness probe;
//! * [`registry`] — a directory of self-describing artifacts;
//! * [`frame`] — the `PGRPC` wire framing the `powergear serve --listen`
//!   daemon speaks over TCP (byte-level spec in `docs/PROTOCOL.md`),
//!   reusing the same codecs so graphs travel over a socket in exactly the
//!   bytes they are persisted with.
//!
//! # On-disk container format (`FORMAT_VERSION` 1)
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns.
//!
//! ```text
//! offset 0:  magic           8 bytes   "PGSTORE\0"
//!            format_version  u32       readers reject newer versions
//!            section_count   u32
//!            section table, one entry per section:
//!              name_len      u16
//!              name          name_len bytes, UTF-8
//!              offset        u64       absolute file offset of payload
//!              length        u64       payload bytes
//!              crc32         u32       IEEE CRC-32 of the payload
//!            payloads, back to back, in table order
//! ```
//!
//! Readers validate the magic, version and every payload's bounds up
//! front, and verify a section's CRC when it is accessed. Corruption
//! anywhere — truncation, bit flips, foreign files, unknown enum tags,
//! counts that exceed the payload — surfaces as a typed [`StoreError`];
//! no decode path panics or over-allocates on malformed input.
//!
//! ## Artifact layout (`.pgm`)
//!
//! A model artifact is a container with sections `meta`
//! ([`ArtifactMeta`]: kernel, target, train-config fingerprint, metrics,
//! created-at, tool version), `ensembles` (named [`pg_gnn::Ensemble`]s —
//! PowerGear stores `total` and `dynamic`) and optionally `probe`
//! (input graphs + the exact prediction bits captured at save time, so a
//! fresh process can prove the loaded weights are bit-identical without
//! the training data).
//!
//! # Examples
//!
//! ```no_run
//! use pg_store::{ArtifactMeta, ModelArtifact, ModelRegistry};
//! # let ensemble = pg_gnn::Ensemble::default();
//! let artifact = ModelArtifact {
//!     meta: ArtifactMeta::now("gemm", "dynamic"),
//!     ensembles: vec![("dynamic".into(), ensemble)],
//!     probe: None,
//! };
//! let registry = ModelRegistry::open("models")?;
//! registry.publish("gemm-v1", &artifact)?;
//! let back = registry.load("gemm-v1")?;
//! back.verify()?; // bit-exactness probe (if embedded)
//! # Ok::<(), pg_store::StoreError>(())
//! ```

pub mod artifact;
pub mod codec;
pub mod container;
pub mod design;
pub mod error;
pub mod frame;
pub mod registry;

pub use artifact::{load_meta, train_fingerprint, ArtifactMeta, ModelArtifact, ProbeSet};
pub use codec::{Dec, Enc};
pub use container::{crc32, Reader, Writer, FORMAT_VERSION, MAGIC};
pub use design::{dec_design, enc_design};
pub use error::StoreError;
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, ErrorFrame, FrameType, ModelInfo,
    ModelListResponse, PredictRequest, PredictResponse, RawFrame, StatsResponse, StatsV2Response,
    FRAME_MAGIC, HEADER_LEN, MAX_PAYLOAD, PGRPC_VERSION, STATSV2_FORMAT_VERSION,
};
pub use registry::{ModelRegistry, RegistryEntry, ARTIFACT_EXT};
