//! Datasets: the paper's nine Polybench kernels, directive design spaces,
//! synthetic training kernels, and the end-to-end labeled-sample builder.
//!
//! * [`mod@polybench`] — atax, bicg, gemm, gesummv, 2mm, 3mm, mvt, syrk, syr2k
//!   as loop-nest ASTs (Table I workloads);
//! * [`space`] — pipeline × unroll × partition design-space enumeration and
//!   deterministic sampling;
//! * [`synthetic`] — random affine kernels "to increase the diversity of
//!   loop patterns in training" (§IV);
//! * [`build`] — kernel + directives → HLS → trace → [`pg_graphcon::PowerGraph`]
//!   (metadata attached) → oracle power labels;
//! * [`cache`] — a thread-safe memoizing [`HlsCache`] so identical
//!   kernel+directive pairs are synthesized once per process, with
//!   `save_to`/`load_from` spill so warm replays survive process exits;
//! * [`snapshot`] — persist/restore fully-labeled datasets (`pg_store`
//!   containers), skipping synthesis, tracing and the oracle entirely;
//! * [`splits`] — the leave-one-kernel-out evaluation protocol.
//!
//! # Examples
//!
//! ```no_run
//! use pg_datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
//! let kernel = polybench::gemm(12);
//! let ds = build_kernel_dataset(&kernel, &DatasetConfig::default());
//! let labeled = ds.labeled(PowerTarget::Dynamic);
//! println!("{} samples, avg {} nodes", labeled.len(), ds.avg_nodes());
//! ```

pub mod build;
pub mod cache;
pub mod polybench;
pub mod snapshot;
pub mod space;
pub mod splits;
pub mod synthetic;

pub use build::{
    build_all, build_kernel_dataset, build_kernel_dataset_cached, build_sample,
    build_sample_cached, sample_from_design, sample_from_design_in, DatasetConfig, KernelDataset,
    PowerTarget, Sample,
};
pub use cache::{kernel_fingerprint, HlsCache, KernelSession};
pub use polybench::{by_name, polybench, KERNEL_NAMES};
pub use snapshot::{load_dataset, save_dataset};
pub use space::{enumerate_space, sample_space};
pub use splits::{all_splits, leave_one_out, LooSplit};
pub use synthetic::{synthetic_kernel, synthetic_kernels};
