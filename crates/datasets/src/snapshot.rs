//! Dataset snapshots: persist a fully-labeled [`KernelDataset`] so serving
//! and retraining can skip HLS, tracing, graph construction and the power
//! oracle entirely.
//!
//! A snapshot stores every [`Sample`] — annotated power graph, directives,
//! oracle power breakdown, latency, HLS report — plus the kernel's
//! unoptimized baseline report, in one `pg_store` container under the
//! `dataset` section. Floats travel as IEEE bit patterns, so a restored
//! dataset compares equal (`==`) to the one that was saved and trains
//! bit-identical models.

use crate::build::{KernelDataset, Sample};
use pg_powersim::PowerBreakdown;
use pg_store::codec::{
    dec_directives, dec_graph, dec_report, enc_directives, enc_graph, enc_report,
};
use pg_store::{Dec, Enc, Reader, StoreError, Writer};
use std::path::Path;

/// Section name datasets are stored under.
const DATASET_SECTION: &str = "dataset";

fn enc_power(e: &mut Enc, p: &PowerBreakdown) {
    e.f64(p.total);
    e.f64(p.dynamic);
    e.f64(p.static_);
    e.f64(p.nets);
    e.f64(p.internal);
    e.f64(p.clock);
}

fn dec_power(d: &mut Dec<'_>) -> Result<PowerBreakdown, StoreError> {
    Ok(PowerBreakdown {
        total: d.f64("power total")?,
        dynamic: d.f64("power dynamic")?,
        static_: d.f64("power static")?,
        nets: d.f64("power nets")?,
        internal: d.f64("power internal")?,
        clock: d.f64("power clock")?,
    })
}

fn enc_sample(e: &mut Enc, s: &Sample) {
    e.str(&s.kernel);
    e.str(&s.design_id);
    enc_directives(e, &s.directives);
    enc_graph(e, &s.graph);
    enc_power(e, &s.power);
    e.u64(s.latency);
    enc_report(e, &s.report);
}

fn dec_sample(d: &mut Dec<'_>) -> Result<Sample, StoreError> {
    Ok(Sample {
        kernel: d.str("sample kernel")?,
        design_id: d.str("sample design id")?,
        directives: dec_directives(d)?,
        graph: dec_graph(d)?,
        power: dec_power(d)?,
        latency: d.u64("sample latency")?,
        report: dec_report(d)?,
    })
}

/// Writes `dataset` as a snapshot container at `path`.
///
/// # Errors
///
/// Propagates [`StoreError`] from the filesystem.
pub fn save_dataset(dataset: &KernelDataset, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let mut e = Enc::new();
    e.str(&dataset.kernel);
    e.u64(dataset.size as u64);
    enc_report(&mut e, &dataset.baseline);
    e.u32(dataset.samples.len() as u32);
    for s in &dataset.samples {
        enc_sample(&mut e, s);
    }
    let mut w = Writer::new();
    w.section(DATASET_SECTION, e.into_bytes());
    w.write_to(path)
}

/// Loads a snapshot written by [`save_dataset`].
///
/// # Errors
///
/// Any [`StoreError`]: I/O, bad magic/version, CRC mismatch, or corrupt
/// payload. Never panics on malformed input.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<KernelDataset, StoreError> {
    let r = Reader::open(path)?;
    let mut d = Dec::new(r.section(DATASET_SECTION)?);
    let kernel = d.str("dataset kernel")?;
    let size = d.usize("dataset size")?;
    let baseline = dec_report(&mut d)?;
    let n = d.count(16, "dataset sample count")?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        samples.push(dec_sample(&mut d)?);
    }
    d.finish("dataset section")?;
    Ok(KernelDataset {
        kernel,
        size,
        samples,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_kernel_dataset, DatasetConfig};
    use crate::polybench;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pg_snapshot_{tag}_{}.pgstore", std::process::id()))
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let ds = build_kernel_dataset(&polybench::mvt(6), &DatasetConfig::tiny());
        let path = tmp("rt");
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(ds, back, "snapshot must be bit-exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_corruption_is_typed() {
        let ds = build_kernel_dataset(&polybench::mvt(6), &DatasetConfig::tiny());
        let path = tmp("bad");
        save_dataset(&ds, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_dataset(&path).is_err());
        // truncation never panics either
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
