//! Memoizing cache over [`HlsFlow::run`].
//!
//! The same (kernel, directive configuration) pair is synthesized many
//! times across the workspace: dataset construction runs the baseline
//! configuration twice (once for the scaling-factor reference, once as
//! sample 0), the Vivado-surrogate calibration and the runtime probes
//! re-synthesize designs the dataset build already produced, and every
//! bench/example that rebuilds a dataset repeats the whole space.
//! [`HlsCache`] memoizes completed [`HlsDesign`]s behind `Arc`s keyed by
//! (kernel fingerprint, directive id), so each design point is synthesized
//! exactly once per process no matter how many layers ask for it.
//!
//! The cache is thread-safe: the parallel dataset builder's workers share
//! one instance. Synthesis happens *outside* the map lock, so concurrent
//! misses never serialize on each other; if two workers race on the same
//! key the first insertion wins and both observe the identical design
//! (synthesis is deterministic).
//!
//! The cache also survives process exits: [`HlsCache::save_to`] spills
//! every design to a `pg_store` container and [`HlsCache::load_from`]
//! warm-starts a fresh process from it, so the measured ~15x warm-replay
//! win carries across runs instead of evaporating with the process.

use pg_hls::{Directives, HlsDesign, HlsError, HlsFlow, KernelAnalysis, PreparedKernel};
use pg_ir::{ArrayKind, Block, Kernel};
use pg_store::{dec_design, enc_design, Dec, Enc, Reader, StoreError, Writer};
use pg_util::rng::hash64;
use pg_util::{metrics, prof};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Section name the cache spill is stored under.
const CACHE_SECTION: &str = "hls_cache";

/// A stable content fingerprint of a kernel (name, arrays, loop nest),
/// distinguishing e.g. the same Polybench kernel at different sizes.
///
/// The digest is a structural serialization — explicit field tags plus the
/// hand-written `Display` forms for statements — never `format!("{:?}")`,
/// whose derive output shifts whenever a field is added or reordered and
/// would silently invalidate cache spills and `.pgm` provenance.
pub fn kernel_fingerprint(kernel: &Kernel) -> u64 {
    let _t = prof::scope("hls.fingerprint");
    let mut buf = Vec::with_capacity(256);
    let push_str = |buf: &mut Vec<u8>, s: &str| {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    };
    push_str(&mut buf, &kernel.name);
    buf.extend_from_slice(&(kernel.arrays.len() as u32).to_le_bytes());
    for a in &kernel.arrays {
        push_str(&mut buf, &a.name);
        buf.push(match a.kind {
            ArrayKind::Input => 0,
            ArrayKind::Output => 1,
            ArrayKind::Temp => 2,
        });
        buf.extend_from_slice(&(a.dims.len() as u32).to_le_bytes());
        for &d in &a.dims {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
    }
    buf.extend_from_slice(&(kernel.scalars.len() as u32).to_le_bytes());
    for s in &kernel.scalars {
        push_str(&mut buf, s);
    }
    fn walk(blocks: &[Block], buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        for b in blocks {
            match b {
                Block::Loop(l) => {
                    buf.push(b'L');
                    buf.extend_from_slice(&(l.var.len() as u32).to_le_bytes());
                    buf.extend_from_slice(l.var.as_bytes());
                    buf.extend_from_slice(&(l.trip as u64).to_le_bytes());
                    walk(&l.body, buf);
                }
                Block::Stmt(s) => {
                    buf.push(b'S');
                    let rendered = format!("{} = {}", s.target, s.expr);
                    buf.extend_from_slice(&(rendered.len() as u32).to_le_bytes());
                    buf.extend_from_slice(rendered.as_bytes());
                }
            }
        }
    }
    walk(&kernel.body, &mut buf);
    hash64(&buf)
}

/// Process-global cache counters (`hls_cache_*` in the metric catalog,
/// `docs/OBSERVABILITY.md`) aggregated across every cache instance, so
/// the serving daemon's registry sees offline-pipeline cache behavior
/// too. The per-instance [`HlsCache::hits`]/[`HlsCache::misses`]
/// accessors stay exact per cache.
struct CacheMetrics {
    hits_total: metrics::Counter,
    misses_total: metrics::Counter,
    sessions_total: metrics::Counter,
}

fn cache_metrics() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        hits_total: metrics::counter("hls_cache_hits_total"),
        misses_total: metrics::counter("hls_cache_misses_total"),
        sessions_total: metrics::counter("hls_cache_sessions_total"),
    })
}

/// A thread-safe memoizing wrapper around [`HlsFlow`].
#[derive(Debug, Default)]
pub struct HlsCache {
    flow: HlsFlow,
    /// Ordered map so spills and any future iteration are deterministic by
    /// construction (lookup cost is negligible next to synthesis).
    map: Mutex<BTreeMap<(u64, String), Arc<HlsDesign>>>,
    /// Directive-independent kernel analyses, keyed by fingerprint, so a
    /// whole design space shares one validation/label analysis.
    analyses: Mutex<BTreeMap<u64, Arc<KernelAnalysis>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl HlsCache {
    /// An empty cache over the default UltraScale+-style FU library.
    pub fn new() -> Self {
        HlsCache::default()
    }

    /// The shared [`KernelAnalysis`] for `kernel`, computed at most once
    /// per fingerprint.
    fn analysis(&self, fingerprint: u64, kernel: &Kernel) -> Result<Arc<KernelAnalysis>, HlsError> {
        if let Some(a) = self
            .analyses
            .lock()
            .expect("analysis lock")
            .get(&fingerprint)
        {
            return Ok(Arc::clone(a));
        }
        // Analyze outside the lock; first insertion wins (deterministic —
        // the analysis is a pure function of the kernel).
        let fresh = Arc::new(KernelAnalysis::new(kernel)?);
        let mut analyses = self.analyses.lock().expect("analysis lock");
        let entry = analyses.entry(fingerprint).or_insert(fresh);
        Ok(Arc::clone(entry))
    }

    /// Opens a per-kernel session: fingerprint and directive-independent
    /// analysis are computed once up front, so synthesizing many design
    /// points of the same kernel skips both on every call. This is the
    /// fast path the dataset builder uses; [`HlsCache::run`] remains for
    /// one-off callers.
    ///
    /// # Errors
    ///
    /// [`HlsError::InvalidKernel`] when structural validation fails.
    pub fn session<'c, 'k>(
        &'c self,
        kernel: &'k Kernel,
    ) -> Result<KernelSession<'c, 'k>, HlsError> {
        let fingerprint = kernel_fingerprint(kernel);
        let analysis = self.analysis(fingerprint, kernel)?;
        cache_metrics().sessions_total.inc();
        Ok(KernelSession {
            cache: self,
            prepared: PreparedKernel::with_analysis(kernel, analysis),
            fingerprint,
        })
    }

    /// Runs the HLS flow, reusing a previously synthesized design when the
    /// (kernel, directives) pair has been seen before.
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis; failed runs are not cached.
    pub fn run(
        &self,
        kernel: &Kernel,
        directives: &Directives,
    ) -> Result<Arc<HlsDesign>, HlsError> {
        let fingerprint = kernel_fingerprint(kernel);
        if let Some(design) = self
            .map
            .lock()
            .expect("cache lock")
            .get(&(fingerprint, directives.id()))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().hits_total.inc();
            return Ok(Arc::clone(design));
        }
        let analysis = self.analysis(fingerprint, kernel)?;
        self.run_prepared(
            fingerprint,
            &PreparedKernel::with_analysis(kernel, analysis),
            directives,
        )
    }

    /// Cache lookup + synthesis against an already-prepared kernel. The
    /// hit path re-checks the map because populate workers race on it.
    fn run_prepared(
        &self,
        fingerprint: u64,
        prepared: &PreparedKernel<'_>,
        directives: &Directives,
    ) -> Result<Arc<HlsDesign>, HlsError> {
        let key = (fingerprint, directives.id());
        if let Some(design) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().hits_total.inc();
            return Ok(Arc::clone(design));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cache_metrics().misses_total.inc();
        let design = Arc::new(self.flow.run_prepared(prepared, directives)?);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map.entry(key).or_insert(design);
        Ok(Arc::clone(entry))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. actual synthesis runs) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct designs held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// `true` when no design has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spills every cached design to a `pg_store` container at `path`, so
    /// a later process can warm-start with [`HlsCache::load_from`] instead
    /// of re-synthesizing the space. The map is ordered, so entries land in
    /// sorted key order and the file is deterministic for a given cache
    /// content. Returns the number of designs written.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the filesystem.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<usize, StoreError> {
        let map = self.map.lock().expect("cache lock");
        let mut e = Enc::new();
        e.u32(map.len() as u32);
        for ((fingerprint, directive_id), design) in map.iter() {
            e.u64(*fingerprint);
            e.str(directive_id);
            enc_design(&mut e, design);
        }
        let count = map.len();
        drop(map);
        let mut w = Writer::new();
        w.section(CACHE_SECTION, e.into_bytes());
        w.write_to(path)?;
        Ok(count)
    }

    /// Loads a cache spilled by [`HlsCache::save_to`]. The returned cache
    /// starts with zero hit/miss counters; every restored design is served
    /// as a hit on its first request.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: I/O, bad magic, version or CRC mismatch, or a
    /// corrupt design payload. A failed load never panics.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<HlsCache, StoreError> {
        let r = Reader::open(path)?;
        let mut d = Dec::new(r.section(CACHE_SECTION)?);
        let n = d.count(8, "cache entry count")?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let fingerprint = d.u64("cache entry fingerprint")?;
            let directive_id = d.str("cache entry directive id")?;
            let design = dec_design(&mut d)?;
            if design.directives.id() != directive_id {
                return Err(StoreError::corrupt(format!(
                    "cache entry keyed `{directive_id}` holds design `{}`",
                    design.directives.id()
                )));
            }
            map.insert((fingerprint, directive_id), Arc::new(design));
        }
        d.finish("cache section")?;
        Ok(HlsCache {
            flow: HlsFlow::new(),
            map: Mutex::new(map),
            analyses: Mutex::new(BTreeMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }
}

/// A per-kernel view of an [`HlsCache`]: the kernel fingerprint and shared
/// [`KernelAnalysis`] are computed once at session open, so every
/// subsequent design-point synthesis pays only for the directive-dependent
/// work. Sessions are cheap handles; open one per kernel per build.
#[derive(Debug)]
pub struct KernelSession<'c, 'k> {
    cache: &'c HlsCache,
    prepared: PreparedKernel<'k>,
    fingerprint: u64,
}

impl KernelSession<'_, '_> {
    /// The session's kernel.
    pub fn kernel(&self) -> &Kernel {
        self.prepared.kernel
    }

    /// Synthesizes (or replays) one design point.
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis; failed runs are not cached.
    pub fn run(&self, directives: &Directives) -> Result<Arc<HlsDesign>, HlsError> {
        self.cache
            .run_prepared(self.fingerprint, &self.prepared, directives)
    }

    /// Synthesizes every design point of `configs` into the cache, cold
    /// points in parallel across `threads` workers.
    ///
    /// Work is distributed dynamically (an atomic cursor over the config
    /// list) rather than in static chunks: design points vary wildly in
    /// synthesis cost — an unrolled-by-8 pipelined point can cost 50x the
    /// baseline — so static sharding leaves workers idle. The cache keys
    /// results by directive id, so the population order (which *is*
    /// nondeterministic) never affects dataset contents.
    ///
    /// # Errors
    ///
    /// The first [`HlsError`] encountered (by config order), if any;
    /// successfully synthesized points remain cached.
    pub fn populate(&self, configs: &[Directives], threads: usize) -> Result<(), HlsError> {
        let _t = prof::scope("populate");
        let workers = threads.max(1).min(configs.len().max(1));
        if workers <= 1 {
            for d in configs {
                self.run(d)?;
            }
            return Ok(());
        }
        let cursor = AtomicUsize::new(0);
        let failures: Mutex<Vec<(usize, HlsError)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(d) = configs.get(i) else { break };
                    if let Err(e) = self.run(d) {
                        failures.lock().expect("failure lock").push((i, e));
                    }
                });
            }
        });
        let mut failures = failures.into_inner().expect("failure lock");
        failures.sort_by_key(|(i, _)| *i);
        match failures.into_iter().next() {
            None => Ok(()),
            Some((_, e)) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn hit_returns_identical_design() {
        let kernel = polybench::mvt(6);
        let mut d = Directives::new();
        d.pipeline("j");
        let cold = HlsFlow::new().run(&kernel, &d).unwrap();
        let cache = HlsCache::new();
        let first = cache.run(&kernel, &d).unwrap();
        let second = cache.run(&kernel, &d).unwrap();
        assert_eq!(*first, cold, "cached design must equal a cold run");
        assert_eq!(*second, cold);
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the entry");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_kernels_get_distinct_entries() {
        let cache = HlsCache::new();
        let mvt6 = polybench::mvt(6);
        let mvt8 = polybench::mvt(8);
        let base = Directives::new();
        let mut piped = Directives::new();
        piped.pipeline("j");
        cache.run(&mvt6, &base).unwrap();
        cache.run(&mvt6, &piped).unwrap();
        cache.run(&mvt8, &base).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 0);
        assert_ne!(kernel_fingerprint(&mvt6), kernel_fingerprint(&mvt8));
    }

    /// Pins the structural digest of a known kernel. If this fails, the
    /// fingerprint definition changed: every cache spill and `.pgm`
    /// provenance record keyed on it is invalidated, so bump deliberately.
    #[test]
    fn fingerprint_is_pinned() {
        assert_eq!(
            kernel_fingerprint(&polybench::atax(8)),
            0xb870_edda_5b21_e296
        );
    }

    /// The digest must cover each structural component: name, array decls,
    /// and the loop nest (vars, trip counts, statements).
    #[test]
    fn fingerprint_sees_every_structural_field() {
        let base = polybench::atax(8);
        let fp = kernel_fingerprint(&base);

        let mut renamed = base.clone();
        renamed.name = "atax2".into();
        assert_ne!(fp, kernel_fingerprint(&renamed), "name ignored");

        let mut arrays = base.clone();
        arrays.arrays[0].dims[0] += 1;
        assert_ne!(fp, kernel_fingerprint(&arrays), "array dims ignored");

        let mut kind = base.clone();
        kind.arrays[0].kind = pg_ir::ArrayKind::Temp;
        assert_ne!(fp, kernel_fingerprint(&kind), "array kind ignored");

        let mut trip = base.clone();
        if let pg_ir::Block::Loop(l) = &mut trip.body[0] {
            l.trip += 1;
        }
        assert_ne!(fp, kernel_fingerprint(&trip), "trip count ignored");

        let mut var = base.clone();
        if let pg_ir::Block::Loop(l) = &mut var.body[0] {
            l.var = "z".into();
        }
        assert_ne!(fp, kernel_fingerprint(&var), "loop var ignored");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        let mut bad = Directives::new();
        bad.pipeline("no_such_loop");
        assert!(cache.run(&kernel, &bad).is_err());
        assert!(cache.is_empty());
        // a miss was counted, but nothing poisoned the map
        assert_eq!(cache.misses(), 1);
        assert!(cache.run(&kernel, &Directives::new()).is_ok());
    }

    #[test]
    fn spill_and_restore_roundtrip() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        let mut piped = Directives::new();
        piped.pipeline("j");
        let a = cache.run(&kernel, &Directives::new()).unwrap();
        let b = cache.run(&kernel, &piped).unwrap();
        let path = std::env::temp_dir().join(format!("pg_cache_{}.pgstore", std::process::id()));
        assert_eq!(cache.save_to(&path).unwrap(), 2);

        let warm = HlsCache::load_from(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.misses(), 0);
        // restored designs are served without synthesis and are identical
        let ra = warm.run(&kernel, &Directives::new()).unwrap();
        let rb = warm.run(&kernel, &piped).unwrap();
        assert_eq!(*ra, *a);
        assert_eq!(*rb, *b);
        assert_eq!(warm.hits(), 2, "restored entries must hit");
        assert_eq!(warm.misses(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_corruption() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        cache.run(&kernel, &Directives::new()).unwrap();
        let path =
            std::env::temp_dir().join(format!("pg_cache_bad_{}.pgstore", std::process::id()));
        cache.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        assert!(HlsCache::load_from(&path).is_err(), "corruption must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_across_threads() {
        let cache = HlsCache::new();
        let kernel = polybench::bicg(6);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let kernel = &kernel;
                scope.spawn(move || {
                    let d = cache.run(kernel, &Directives::new()).unwrap();
                    assert!(d.report.latency_cycles > 0);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 4);
    }
}
