//! Memoizing cache over [`HlsFlow::run`].
//!
//! The same (kernel, directive configuration) pair is synthesized many
//! times across the workspace: dataset construction runs the baseline
//! configuration twice (once for the scaling-factor reference, once as
//! sample 0), the Vivado-surrogate calibration and the runtime probes
//! re-synthesize designs the dataset build already produced, and every
//! bench/example that rebuilds a dataset repeats the whole space.
//! [`HlsCache`] memoizes completed [`HlsDesign`]s behind `Arc`s keyed by
//! (kernel fingerprint, directive id), so each design point is synthesized
//! exactly once per process no matter how many layers ask for it.
//!
//! The cache is thread-safe: the parallel dataset builder's workers share
//! one instance. Synthesis happens *outside* the map lock, so concurrent
//! misses never serialize on each other; if two workers race on the same
//! key the first insertion wins and both observe the identical design
//! (synthesis is deterministic).
//!
//! The cache also survives process exits: [`HlsCache::save_to`] spills
//! every design to a `pg_store` container and [`HlsCache::load_from`]
//! warm-starts a fresh process from it, so the measured ~15x warm-replay
//! win carries across runs instead of evaporating with the process.

use pg_hls::{Directives, HlsDesign, HlsError, HlsFlow};
use pg_ir::Kernel;
use pg_store::{dec_design, enc_design, Dec, Enc, Reader, StoreError, Writer};
use pg_util::rng::hash64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Section name the cache spill is stored under.
const CACHE_SECTION: &str = "hls_cache";

/// A stable content fingerprint of a kernel (name, arrays, loop nest),
/// distinguishing e.g. the same Polybench kernel at different sizes.
pub fn kernel_fingerprint(kernel: &Kernel) -> u64 {
    hash64(format!("{kernel:?}").as_bytes())
}

/// A thread-safe memoizing wrapper around [`HlsFlow`].
#[derive(Debug, Default)]
pub struct HlsCache {
    flow: HlsFlow,
    map: Mutex<HashMap<(u64, String), Arc<HlsDesign>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl HlsCache {
    /// An empty cache over the default UltraScale+-style FU library.
    pub fn new() -> Self {
        HlsCache::default()
    }

    /// Runs the HLS flow, reusing a previously synthesized design when the
    /// (kernel, directives) pair has been seen before.
    ///
    /// # Errors
    ///
    /// Propagates [`HlsError`] from synthesis; failed runs are not cached.
    pub fn run(
        &self,
        kernel: &Kernel,
        directives: &Directives,
    ) -> Result<Arc<HlsDesign>, HlsError> {
        let key = (kernel_fingerprint(kernel), directives.id());
        if let Some(design) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(design));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let design = Arc::new(self.flow.run(kernel, directives)?);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map.entry(key).or_insert(design);
        Ok(Arc::clone(entry))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. actual synthesis runs) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct designs held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// `true` when no design has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spills every cached design to a `pg_store` container at `path`, so
    /// a later process can warm-start with [`HlsCache::load_from`] instead
    /// of re-synthesizing the space. Entries are written in sorted key
    /// order, making the file deterministic for a given cache content.
    /// Returns the number of designs written.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] from the filesystem.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<usize, StoreError> {
        let map = self.map.lock().expect("cache lock");
        let mut entries: Vec<(&(u64, String), &Arc<HlsDesign>)> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut e = Enc::new();
        e.u32(entries.len() as u32);
        for ((fingerprint, directive_id), design) in entries {
            e.u64(*fingerprint);
            e.str(directive_id);
            enc_design(&mut e, design);
        }
        let count = map.len();
        drop(map);
        let mut w = Writer::new();
        w.section(CACHE_SECTION, e.into_bytes());
        w.write_to(path)?;
        Ok(count)
    }

    /// Loads a cache spilled by [`HlsCache::save_to`]. The returned cache
    /// starts with zero hit/miss counters; every restored design is served
    /// as a hit on its first request.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: I/O, bad magic, version or CRC mismatch, or a
    /// corrupt design payload. A failed load never panics.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<HlsCache, StoreError> {
        let r = Reader::open(path)?;
        let mut d = Dec::new(r.section(CACHE_SECTION)?);
        let n = d.count(8, "cache entry count")?;
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let fingerprint = d.u64("cache entry fingerprint")?;
            let directive_id = d.str("cache entry directive id")?;
            let design = dec_design(&mut d)?;
            if design.directives.id() != directive_id {
                return Err(StoreError::corrupt(format!(
                    "cache entry keyed `{directive_id}` holds design `{}`",
                    design.directives.id()
                )));
            }
            map.insert((fingerprint, directive_id), Arc::new(design));
        }
        d.finish("cache section")?;
        Ok(HlsCache {
            flow: HlsFlow::new(),
            map: Mutex::new(map),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn hit_returns_identical_design() {
        let kernel = polybench::mvt(6);
        let mut d = Directives::new();
        d.pipeline("j");
        let cold = HlsFlow::new().run(&kernel, &d).unwrap();
        let cache = HlsCache::new();
        let first = cache.run(&kernel, &d).unwrap();
        let second = cache.run(&kernel, &d).unwrap();
        assert_eq!(*first, cold, "cached design must equal a cold run");
        assert_eq!(*second, cold);
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the entry");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_kernels_get_distinct_entries() {
        let cache = HlsCache::new();
        let mvt6 = polybench::mvt(6);
        let mvt8 = polybench::mvt(8);
        let base = Directives::new();
        let mut piped = Directives::new();
        piped.pipeline("j");
        cache.run(&mvt6, &base).unwrap();
        cache.run(&mvt6, &piped).unwrap();
        cache.run(&mvt8, &base).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 0);
        assert_ne!(kernel_fingerprint(&mvt6), kernel_fingerprint(&mvt8));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        let mut bad = Directives::new();
        bad.pipeline("no_such_loop");
        assert!(cache.run(&kernel, &bad).is_err());
        assert!(cache.is_empty());
        // a miss was counted, but nothing poisoned the map
        assert_eq!(cache.misses(), 1);
        assert!(cache.run(&kernel, &Directives::new()).is_ok());
    }

    #[test]
    fn spill_and_restore_roundtrip() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        let mut piped = Directives::new();
        piped.pipeline("j");
        let a = cache.run(&kernel, &Directives::new()).unwrap();
        let b = cache.run(&kernel, &piped).unwrap();
        let path = std::env::temp_dir().join(format!("pg_cache_{}.pgstore", std::process::id()));
        assert_eq!(cache.save_to(&path).unwrap(), 2);

        let warm = HlsCache::load_from(&path).unwrap();
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.misses(), 0);
        // restored designs are served without synthesis and are identical
        let ra = warm.run(&kernel, &Directives::new()).unwrap();
        let rb = warm.run(&kernel, &piped).unwrap();
        assert_eq!(*ra, *a);
        assert_eq!(*rb, *b);
        assert_eq!(warm.hits(), 2, "restored entries must hit");
        assert_eq!(warm.misses(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_corruption() {
        let cache = HlsCache::new();
        let kernel = polybench::mvt(6);
        cache.run(&kernel, &Directives::new()).unwrap();
        let path =
            std::env::temp_dir().join(format!("pg_cache_bad_{}.pgstore", std::process::id()));
        cache.save_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        assert!(HlsCache::load_from(&path).is_err(), "corruption must fail");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_across_threads() {
        let cache = HlsCache::new();
        let kernel = polybench::bicg(6);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let kernel = &kernel;
                scope.spawn(move || {
                    let d = cache.run(kernel, &Directives::new()).unwrap();
                    assert!(d.report.latency_cycles > 0);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 4);
    }
}
