//! The nine Polybench kernels of the paper's evaluation (Table I):
//! atax, bicg, gemm, gesummv, 2mm, 3mm, mvt, syrk, syr2k.
//!
//! Each kernel is expressed in the loop-nest AST of `pg-ir`, with constant
//! problem sizes chosen so that activity tracing stays laptop-fast while
//! the *relative* graph sizes track the paper (3mm/2mm/syr2k largest,
//! atax/bicg/mvt smallest). Loop labels are unique per kernel and are the
//! handles design-space directives attach to.

use pg_ir::expr::{aff, Expr};
use pg_ir::{ArrayKind, Kernel, KernelBuilder};

/// Names of the nine kernels, in the paper's Table I order.
pub const KERNEL_NAMES: [&str; 9] = [
    "atax", "bicg", "gemm", "gesummv", "2mm", "3mm", "mvt", "syrk", "syr2k",
];

/// Builds every kernel at problem size `n`.
pub fn polybench(n: usize) -> Vec<Kernel> {
    vec![
        atax(n),
        bicg(n),
        gemm(n),
        gesummv(n),
        two_mm(n),
        three_mm(n),
        mvt(n),
        syrk(n),
        syr2k(n),
    ]
}

/// Looks a kernel up by name at size `n`.
pub fn by_name(name: &str, n: usize) -> Option<Kernel> {
    polybench(n).into_iter().find(|k| k.name == name)
}

/// `atax`: y = Aᵀ(Ax).
pub fn atax(n: usize) -> Kernel {
    KernelBuilder::new("atax")
        .array("A", &[n, n], ArrayKind::Input)
        .array("x", &[n], ArrayKind::Input)
        .array("tmp", &[n], ArrayKind::Temp)
        .array("y", &[n], ArrayKind::Output)
        .loop_("i", n, |b| {
            b.assign(("tmp", vec![aff("i")]), Expr::Const(0.0));
            b.loop_("j", n, |b| {
                b.assign(
                    ("tmp", vec![aff("i")]),
                    Expr::load("tmp", vec![aff("i")])
                        + Expr::load("A", vec![aff("i"), aff("j")])
                            * Expr::load("x", vec![aff("j")]),
                );
            });
        })
        .loop_("jy", n, |b| {
            b.assign(("y", vec![aff("jy")]), Expr::Const(0.0));
        })
        .loop_("i2", n, |b| {
            b.loop_("j2", n, |b| {
                b.assign(
                    ("y", vec![aff("j2")]),
                    Expr::load("y", vec![aff("j2")])
                        + Expr::load("A", vec![aff("i2"), aff("j2")])
                            * Expr::load("tmp", vec![aff("i2")]),
                );
            });
        })
        .build()
        .expect("atax is well-formed")
}

/// `bicg`: s = Aᵀr, q = Ap.
pub fn bicg(n: usize) -> Kernel {
    KernelBuilder::new("bicg")
        .array("A", &[n, n], ArrayKind::Input)
        .array("r", &[n], ArrayKind::Input)
        .array("p", &[n], ArrayKind::Input)
        .array("s", &[n], ArrayKind::Output)
        .array("q", &[n], ArrayKind::Output)
        .loop_("js", n, |b| {
            b.assign(("s", vec![aff("js")]), Expr::Const(0.0));
        })
        .loop_("i", n, |b| {
            b.assign(("q", vec![aff("i")]), Expr::Const(0.0));
            b.loop_("j", n, |b| {
                b.assign(
                    ("s", vec![aff("j")]),
                    Expr::load("s", vec![aff("j")])
                        + Expr::load("r", vec![aff("i")])
                            * Expr::load("A", vec![aff("i"), aff("j")]),
                );
            });
            b.loop_("j2", n, |b| {
                b.assign(
                    ("q", vec![aff("i")]),
                    Expr::load("q", vec![aff("i")])
                        + Expr::load("A", vec![aff("i"), aff("j2")])
                            * Expr::load("p", vec![aff("j2")]),
                );
            });
        })
        .build()
        .expect("bicg is well-formed")
}

/// `gemm`: C = α·A·B + β·C.
pub fn gemm(n: usize) -> Kernel {
    KernelBuilder::new("gemm")
        .array("A", &[n, n], ArrayKind::Input)
        .array("B", &[n, n], ArrayKind::Input)
        .array("C", &[n, n], ArrayKind::Output)
        .scalar("alpha")
        .scalar("beta")
        .loop_("i0", n, |b| {
            b.loop_("j0", n, |b| {
                b.assign(
                    ("C", vec![aff("i0"), aff("j0")]),
                    Expr::scalar("beta") * Expr::load("C", vec![aff("i0"), aff("j0")]),
                );
            });
        })
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.loop_("k", n, |b| {
                    b.assign(
                        ("C", vec![aff("i"), aff("j")]),
                        Expr::load("C", vec![aff("i"), aff("j")])
                            + Expr::scalar("alpha")
                                * Expr::load("A", vec![aff("i"), aff("k")])
                                * Expr::load("B", vec![aff("k"), aff("j")]),
                    );
                });
            });
        })
        .build()
        .expect("gemm is well-formed")
}

/// `gesummv`: y = α·A·x + β·B·x.
pub fn gesummv(n: usize) -> Kernel {
    KernelBuilder::new("gesummv")
        .array("A", &[n, n], ArrayKind::Input)
        .array("B", &[n, n], ArrayKind::Input)
        .array("x", &[n], ArrayKind::Input)
        .array("tmp", &[n], ArrayKind::Temp)
        .array("y", &[n], ArrayKind::Output)
        .scalar("alpha")
        .scalar("beta")
        .loop_("i", n, |b| {
            b.assign(("tmp", vec![aff("i")]), Expr::Const(0.0));
            b.assign(("y", vec![aff("i")]), Expr::Const(0.0));
            b.loop_("j", n, |b| {
                b.assign(
                    ("tmp", vec![aff("i")]),
                    Expr::load("tmp", vec![aff("i")])
                        + Expr::load("A", vec![aff("i"), aff("j")])
                            * Expr::load("x", vec![aff("j")]),
                );
                b.assign(
                    ("y", vec![aff("i")]),
                    Expr::load("y", vec![aff("i")])
                        + Expr::load("B", vec![aff("i"), aff("j")])
                            * Expr::load("x", vec![aff("j")]),
                );
            });
            b.assign(
                ("y", vec![aff("i")]),
                Expr::scalar("alpha") * Expr::load("tmp", vec![aff("i")])
                    + Expr::scalar("beta") * Expr::load("y", vec![aff("i")]),
            );
        })
        .build()
        .expect("gesummv is well-formed")
}

/// `2mm`: D = α·A·B·C + β·D (via tmp = α·A·B).
pub fn two_mm(n: usize) -> Kernel {
    KernelBuilder::new("2mm")
        .array("A", &[n, n], ArrayKind::Input)
        .array("B", &[n, n], ArrayKind::Input)
        .array("C", &[n, n], ArrayKind::Input)
        .array("D", &[n, n], ArrayKind::Output)
        .array("tmp", &[n, n], ArrayKind::Temp)
        .scalar("alpha")
        .scalar("beta")
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.assign(("tmp", vec![aff("i"), aff("j")]), Expr::Const(0.0));
                b.loop_("k", n, |b| {
                    b.assign(
                        ("tmp", vec![aff("i"), aff("j")]),
                        Expr::load("tmp", vec![aff("i"), aff("j")])
                            + Expr::scalar("alpha")
                                * Expr::load("A", vec![aff("i"), aff("k")])
                                * Expr::load("B", vec![aff("k"), aff("j")]),
                    );
                });
            });
        })
        .loop_("i2", n, |b| {
            b.loop_("j2", n, |b| {
                b.assign(
                    ("D", vec![aff("i2"), aff("j2")]),
                    Expr::scalar("beta") * Expr::load("D", vec![aff("i2"), aff("j2")]),
                );
                b.loop_("k2", n, |b| {
                    b.assign(
                        ("D", vec![aff("i2"), aff("j2")]),
                        Expr::load("D", vec![aff("i2"), aff("j2")])
                            + Expr::load("tmp", vec![aff("i2"), aff("k2")])
                                * Expr::load("C", vec![aff("k2"), aff("j2")]),
                    );
                });
            });
        })
        .build()
        .expect("2mm is well-formed")
}

/// `3mm`: G = (A·B)·(C·D).
pub fn three_mm(n: usize) -> Kernel {
    KernelBuilder::new("3mm")
        .array("A", &[n, n], ArrayKind::Input)
        .array("B", &[n, n], ArrayKind::Input)
        .array("C", &[n, n], ArrayKind::Input)
        .array("D", &[n, n], ArrayKind::Input)
        .array("E", &[n, n], ArrayKind::Temp)
        .array("F", &[n, n], ArrayKind::Temp)
        .array("G", &[n, n], ArrayKind::Output)
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.assign(("E", vec![aff("i"), aff("j")]), Expr::Const(0.0));
                b.loop_("k", n, |b| {
                    b.assign(
                        ("E", vec![aff("i"), aff("j")]),
                        Expr::load("E", vec![aff("i"), aff("j")])
                            + Expr::load("A", vec![aff("i"), aff("k")])
                                * Expr::load("B", vec![aff("k"), aff("j")]),
                    );
                });
            });
        })
        .loop_("i2", n, |b| {
            b.loop_("j2", n, |b| {
                b.assign(("F", vec![aff("i2"), aff("j2")]), Expr::Const(0.0));
                b.loop_("k2", n, |b| {
                    b.assign(
                        ("F", vec![aff("i2"), aff("j2")]),
                        Expr::load("F", vec![aff("i2"), aff("j2")])
                            + Expr::load("C", vec![aff("i2"), aff("k2")])
                                * Expr::load("D", vec![aff("k2"), aff("j2")]),
                    );
                });
            });
        })
        .loop_("i3", n, |b| {
            b.loop_("j3", n, |b| {
                b.assign(("G", vec![aff("i3"), aff("j3")]), Expr::Const(0.0));
                b.loop_("k3", n, |b| {
                    b.assign(
                        ("G", vec![aff("i3"), aff("j3")]),
                        Expr::load("G", vec![aff("i3"), aff("j3")])
                            + Expr::load("E", vec![aff("i3"), aff("k3")])
                                * Expr::load("F", vec![aff("k3"), aff("j3")]),
                    );
                });
            });
        })
        .build()
        .expect("3mm is well-formed")
}

/// `mvt`: x1 += A·y1, x2 += Aᵀ·y2.
pub fn mvt(n: usize) -> Kernel {
    KernelBuilder::new("mvt")
        .array("A", &[n, n], ArrayKind::Input)
        .array("y1", &[n], ArrayKind::Input)
        .array("y2", &[n], ArrayKind::Input)
        .array("x1", &[n], ArrayKind::Output)
        .array("x2", &[n], ArrayKind::Output)
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.assign(
                    ("x1", vec![aff("i")]),
                    Expr::load("x1", vec![aff("i")])
                        + Expr::load("A", vec![aff("i"), aff("j")])
                            * Expr::load("y1", vec![aff("j")]),
                );
            });
        })
        .loop_("i2", n, |b| {
            b.loop_("j2", n, |b| {
                b.assign(
                    ("x2", vec![aff("i2")]),
                    Expr::load("x2", vec![aff("i2")])
                        + Expr::load("A", vec![aff("j2"), aff("i2")])
                            * Expr::load("y2", vec![aff("j2")]),
                );
            });
        })
        .build()
        .expect("mvt is well-formed")
}

/// `syrk`: C = α·A·Aᵀ + β·C.
pub fn syrk(n: usize) -> Kernel {
    KernelBuilder::new("syrk")
        .array("A", &[n, n], ArrayKind::Input)
        .array("C", &[n, n], ArrayKind::Output)
        .scalar("alpha")
        .scalar("beta")
        .loop_("i0", n, |b| {
            b.loop_("j0", n, |b| {
                b.assign(
                    ("C", vec![aff("i0"), aff("j0")]),
                    Expr::scalar("beta") * Expr::load("C", vec![aff("i0"), aff("j0")]),
                );
            });
        })
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.loop_("k", n, |b| {
                    b.assign(
                        ("C", vec![aff("i"), aff("j")]),
                        Expr::load("C", vec![aff("i"), aff("j")])
                            + Expr::scalar("alpha")
                                * Expr::load("A", vec![aff("i"), aff("k")])
                                * Expr::load("A", vec![aff("j"), aff("k")]),
                    );
                });
            });
        })
        .build()
        .expect("syrk is well-formed")
}

/// `syr2k`: C = α·A·Bᵀ + α·B·Aᵀ + β·C.
pub fn syr2k(n: usize) -> Kernel {
    KernelBuilder::new("syr2k")
        .array("A", &[n, n], ArrayKind::Input)
        .array("B", &[n, n], ArrayKind::Input)
        .array("C", &[n, n], ArrayKind::Output)
        .scalar("alpha")
        .scalar("beta")
        .loop_("i0", n, |b| {
            b.loop_("j0", n, |b| {
                b.assign(
                    ("C", vec![aff("i0"), aff("j0")]),
                    Expr::scalar("beta") * Expr::load("C", vec![aff("i0"), aff("j0")]),
                );
            });
        })
        .loop_("i", n, |b| {
            b.loop_("j", n, |b| {
                b.loop_("k", n, |b| {
                    b.assign(
                        ("C", vec![aff("i"), aff("j")]),
                        Expr::load("C", vec![aff("i"), aff("j")])
                            + Expr::scalar("alpha")
                                * Expr::load("A", vec![aff("i"), aff("k")])
                                * Expr::load("B", vec![aff("j"), aff("k")])
                            + Expr::scalar("alpha")
                                * Expr::load("B", vec![aff("i"), aff("k")])
                                * Expr::load("A", vec![aff("j"), aff("k")]),
                    );
                });
            });
        })
        .build()
        .expect("syr2k is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_activity::{execute, Stimuli};
    use pg_hls::{Directives, HlsFlow};

    #[test]
    fn all_nine_build_and_validate() {
        let ks = polybench(8);
        assert_eq!(ks.len(), 9);
        let names: Vec<&str> = ks.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, KERNEL_NAMES.to_vec());
        for k in &ks {
            assert!(k.validate().is_ok(), "{} invalid", k.name);
            assert!(!k.innermost_loops().is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn by_name_finds_each() {
        for name in KERNEL_NAMES {
            assert!(by_name(name, 8).is_some(), "{name}");
        }
        assert!(by_name("nope", 8).is_none());
    }

    #[test]
    fn all_kernels_synthesize_and_execute() {
        for k in polybench(6) {
            let design = HlsFlow::new()
                .run(&k, &Directives::new())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let trace = execute(&design, &Stimuli::for_kernel(&k, 0));
            assert!(trace.latency > 0, "{}", k.name);
        }
    }

    #[test]
    fn gemm_functional_check() {
        let k = gemm(5);
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let (a, b, c0) = (&stim.arrays["A"], &stim.arrays["B"], &stim.arrays["C"]);
        let (alpha, beta) = (stim.scalar("alpha"), stim.scalar("beta"));
        let c = &trace.final_arrays["C"];
        for i in 0..5 {
            for j in 0..5 {
                let mut acc = beta * c0[i * 5 + j];
                for kk in 0..5 {
                    acc += alpha * a[i * 5 + kk] * b[kk * 5 + j];
                }
                assert!((c[i * 5 + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn atax_functional_check() {
        let k = atax(5);
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let (a, x) = (&stim.arrays["A"], &stim.arrays["x"]);
        let y = &trace.final_arrays["y"];
        let mut tmp = [0.0f32; 5];
        for i in 0..5 {
            for j in 0..5 {
                tmp[i] += a[i * 5 + j] * x[j];
            }
        }
        for j in 0..5 {
            let mut acc = 0.0f32;
            for i in 0..5 {
                acc += a[i * 5 + j] * tmp[i];
            }
            assert!((y[j] - acc).abs() < 1e-4, "y[{j}]");
        }
    }

    #[test]
    fn mvt_transposed_access_works() {
        let k = mvt(4);
        let design = HlsFlow::new().run(&k, &Directives::new()).unwrap();
        let stim = Stimuli::for_kernel(&k, 0);
        let trace = execute(&design, &stim);
        let a = &stim.arrays["A"];
        let (y2, x2_0) = (&stim.arrays["y2"], &stim.arrays["x2"]);
        let x2 = &trace.final_arrays["x2"];
        for i in 0..4 {
            let mut acc = x2_0[i];
            for j in 0..4 {
                acc += a[j * 4 + i] * y2[j];
            }
            assert!((x2[i] - acc).abs() < 1e-4);
        }
    }

    #[test]
    fn relative_complexity_ordering() {
        // 3mm-family kernels must produce larger IR than atax-family
        let ks = polybench(8);
        let size = |name: &str| {
            ks.iter()
                .find(|k| k.name == name)
                .map(|k| HlsFlow::new().run(k, &Directives::new()).unwrap().ir.len())
                .unwrap()
        };
        assert!(size("3mm") > size("gemm"));
        assert!(size("2mm") > size("atax"));
        assert!(size("3mm") > size("mvt"));
    }
}
