//! Leave-one-kernel-out splits.
//!
//! "We leave one target application out of the nine applications as the
//! test dataset, and use all the others for training. With this
//! leave-one-out training scheme, we can verify the transferability of the
//! models" (§IV-A).

use crate::build::{KernelDataset, PowerTarget, Sample};
use pg_graphcon::PowerGraph;

/// A leave-one-out split: borrowed training and test sample views.
#[derive(Debug, Clone)]
pub struct LooSplit<'a> {
    /// Name of the held-out kernel.
    pub test_kernel: String,
    /// Training samples (all other kernels).
    pub train: Vec<&'a Sample>,
    /// Test samples (the held-out kernel).
    pub test: Vec<&'a Sample>,
}

impl<'a> LooSplit<'a> {
    /// Labeled `(graph, value)` training pairs.
    pub fn train_labeled(&self, target: PowerTarget) -> Vec<(&'a PowerGraph, f64)> {
        self.train
            .iter()
            .map(|s| (&s.graph, s.label(target)))
            .collect()
    }

    /// Labeled `(graph, value)` test pairs.
    pub fn test_labeled(&self, target: PowerTarget) -> Vec<(&'a PowerGraph, f64)> {
        self.test
            .iter()
            .map(|s| (&s.graph, s.label(target)))
            .collect()
    }
}

/// Builds the split holding out `test_kernel`.
///
/// # Panics
///
/// Panics if `test_kernel` is not present in `datasets`.
pub fn leave_one_out<'a>(datasets: &'a [KernelDataset], test_kernel: &str) -> LooSplit<'a> {
    assert!(
        datasets.iter().any(|d| d.kernel == test_kernel),
        "unknown test kernel `{test_kernel}`"
    );
    let mut train = Vec::new();
    let mut test = Vec::new();
    for ds in datasets {
        if ds.kernel == test_kernel {
            test.extend(ds.samples.iter());
        } else {
            train.extend(ds.samples.iter());
        }
    }
    LooSplit {
        test_kernel: test_kernel.to_string(),
        train,
        test,
    }
}

/// All nine leave-one-out splits, in dataset order.
pub fn all_splits(datasets: &[KernelDataset]) -> Vec<LooSplit<'_>> {
    datasets
        .iter()
        .map(|d| leave_one_out(datasets, &d.kernel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_kernel_dataset, DatasetConfig};
    use crate::polybench;

    fn two_datasets() -> Vec<KernelDataset> {
        let cfg = DatasetConfig::tiny();
        vec![
            build_kernel_dataset(&polybench::mvt(6), &cfg),
            build_kernel_dataset(&polybench::bicg(6), &cfg),
        ]
    }

    #[test]
    fn split_partitions_samples() {
        let ds = two_datasets();
        let split = leave_one_out(&ds, "mvt");
        assert_eq!(split.test_kernel, "mvt");
        assert!(split.test.iter().all(|s| s.kernel == "mvt"));
        assert!(split.train.iter().all(|s| s.kernel != "mvt"));
        assert_eq!(
            split.train.len() + split.test.len(),
            ds.iter().map(|d| d.samples.len()).sum::<usize>()
        );
    }

    #[test]
    fn labeled_views_match_targets() {
        let ds = two_datasets();
        let split = leave_one_out(&ds, "bicg");
        let tot = split.test_labeled(PowerTarget::Total);
        let dyn_ = split.test_labeled(PowerTarget::Dynamic);
        for ((_, t), (_, d)) in tot.iter().zip(&dyn_) {
            assert!(t > d, "total must exceed dynamic");
        }
    }

    #[test]
    fn all_splits_cover_each_kernel() {
        let ds = two_datasets();
        let splits = all_splits(&ds);
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].test_kernel, "mvt");
        assert_eq!(splits[1].test_kernel, "bicg");
    }

    #[test]
    #[should_panic]
    fn unknown_kernel_panics() {
        let ds = two_datasets();
        leave_one_out(&ds, "gemm");
    }
}
