//! End-to-end dataset construction: kernel + directive sample → HLS →
//! activity trace → power graph (with metadata features) → oracle labels.
//!
//! This is the "training stage" data collection of Fig. 1, with the
//! RTL-implementation + on-board measurement replaced by the `pg-powersim`
//! oracle. The default [`DatasetConfig`] targets the paper's scale of
//! ~500 design points per kernel.
//!
//! # Parallel cold-synthesis architecture
//!
//! [`build_kernel_dataset_cached`] runs two parallel phases over one
//! shared [`HlsCache`]:
//!
//! 1. **Cold synthesis** — a [`KernelSession`](crate::cache::KernelSession)
//!    is opened once per kernel (computing the fingerprint and the
//!    directive-independent [`KernelAnalysis`](pg_hls::KernelAnalysis)
//!    exactly once for the whole space), then
//!    [`populate`](crate::cache::KernelSession::populate) synthesizes the
//!    directive space with *work-stealing* workers: an atomic cursor over
//!    the config list, because design points vary wildly in cost (an
//!    unrolled-by-8 pipelined point can cost ~50x the baseline) and
//!    static chunking would leave workers idle.
//! 2. **Sample assembly** — tracing, graph construction and oracle
//!    labeling run over the now-warm cache, again via an atomic cursor;
//!    each worker pushes `(index, sample)` and results are re-ordered by
//!    index afterwards.
//!
//! Both phases are scheduling-nondeterministic internally, but neither
//! lets the schedule leak into the output: the cache keys designs by
//! directive id and synthesis is a pure function, and assembly re-orders
//! by index. Datasets are therefore **bit-identical for any thread
//! count** (pinned by the scale-determinism suite in
//! `tests/determinism.rs`).
//!
//! Per design point, one `WorkGraph` is built and shared between the
//! finalized [`PowerGraph`] sample and the power oracle's netlist
//! surrogate — see [`sample_from_design`]. Every assembly worker owns a
//! [`pg_activity::TraceScratch`]: the trace interpreter's flat event arena
//! and row buffer are recycled across all the design points the worker
//! steals, so steady-state assembly performs no large allocations. Timing
//! of every stage is attributed via `pg_util::prof` scopes; the
//! `profile_synth` bench bin prints the table.

use crate::cache::HlsCache;
use crate::space::sample_space;
use pg_activity::{execute_in, Stimuli, TraceScratch};
use pg_graphcon::{GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsDesign, HlsReport};
use pg_ir::Kernel;
use pg_powersim::{BoardOracle, PowerBreakdown};
use pg_util::prof;

/// Dataset construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Problem size of the Polybench kernels.
    pub size: usize,
    /// Maximum design points per kernel (paper: ~500).
    pub max_samples: usize,
    /// Sampling / stimuli seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for DatasetConfig {
    /// The paper profile: ~500 design points per kernel (HL-Pow and
    /// PowerGear both train on design spaces of this density). The
    /// optimized cold-synthesis path makes this the affordable default;
    /// use [`DatasetConfig::quick`] for the old 96-point scale.
    fn default() -> Self {
        DatasetConfig {
            size: 16,
            max_samples: 500,
            seed: 1,
            threads: 2,
        }
    }
}

impl DatasetConfig {
    /// The paper-scale profile (alias of `Default`): ~500 points/kernel.
    pub fn paper() -> Self {
        DatasetConfig::default()
    }

    /// The quick profile: 96 points/kernel (the pre-optimization default),
    /// still dense enough for examples and local experiments.
    pub fn quick() -> Self {
        DatasetConfig {
            max_samples: 96,
            ..DatasetConfig::default()
        }
    }

    /// The XL profile: up to 1000 design points per kernel (benchmark
    /// scale à la Wu et al.'s GNN performance-prediction suites; kernels
    /// whose directive space is smaller use the whole space). Affordable
    /// because of the flat event arena + compressed activity streams.
    pub fn paper_xl() -> Self {
        DatasetConfig {
            max_samples: 1000,
            ..DatasetConfig::default()
        }
    }

    /// A smaller configuration for unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            size: 6,
            max_samples: 10,
            seed: 1,
            threads: 1,
        }
    }
}

/// One labeled design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Source kernel.
    pub kernel: String,
    /// Design-point identifier.
    pub design_id: String,
    /// The directive configuration (kept so estimators can re-synthesize).
    pub directives: Directives,
    /// The annotated graph (metadata features filled in).
    pub graph: PowerGraph,
    /// Ground-truth power from the board oracle.
    pub power: PowerBreakdown,
    /// Design latency in cycles.
    pub latency: u64,
    /// HLS report of this design point.
    pub report: HlsReport,
}

/// Which power figure a model regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerTarget {
    /// Total (dynamic + static) power.
    Total,
    /// Dynamic power only.
    Dynamic,
}

impl Sample {
    /// The regression target for `target`.
    pub fn label(&self, target: PowerTarget) -> f64 {
        match target {
            PowerTarget::Total => self.power.total,
            PowerTarget::Dynamic => self.power.dynamic,
        }
    }
}

/// All samples of one kernel plus its unoptimized baseline report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDataset {
    /// Kernel name.
    pub kernel: String,
    /// Problem size used.
    pub size: usize,
    /// Labeled samples (baseline configuration first).
    pub samples: Vec<Sample>,
    /// Report of the unoptimized baseline (scaling-factor reference).
    pub baseline: HlsReport,
}

impl KernelDataset {
    /// Mean node count across sample graphs (Table I "Avg. #Nodes").
    pub fn avg_nodes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.graph.num_nodes as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Labeled `(graph, value)` views for training.
    pub fn labeled(&self, target: PowerTarget) -> Vec<(&PowerGraph, f64)> {
        self.samples
            .iter()
            .map(|s| (&s.graph, s.label(target)))
            .collect()
    }
}

/// Labels one already-synthesized design (trace → graph → metadata →
/// oracle power).
pub fn sample_from_design(
    kernel: &Kernel,
    design: &HlsDesign,
    stimuli: &Stimuli,
    baseline: &HlsReport,
) -> Sample {
    sample_from_design_in(kernel, design, stimuli, baseline, &mut TraceScratch::new())
}

/// [`sample_from_design`] against a reusable [`TraceScratch`]: the trace
/// interpreter's event arena and row buffer come from `scratch` and the
/// arena allocation is reclaimed once the sample no longer references it,
/// so a worker labeling many design points performs no large per-point
/// allocations. Bit-identical to the fresh-buffer path.
pub fn sample_from_design_in(
    kernel: &Kernel,
    design: &HlsDesign,
    stimuli: &Stimuli,
    baseline: &HlsReport,
    scratch: &mut TraceScratch,
) -> Sample {
    let _t = prof::scope("sample");
    let trace = {
        let _t = prof::scope("sample.trace");
        execute_in(design, stimuli, scratch)
    };
    // One work graph serves both the GNN sample and the oracle's netlist
    // surrogate — the construction passes (raw DFG, buffers, merge, trim)
    // used to run twice per design point.
    let flow = GraphFlow::new();
    let work = flow.build_work(design, &trace);
    let mut graph = flow.finalize_work(&work, design);
    graph.meta = design
        .report
        .metadata_features(baseline)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let power = {
        let _t = prof::scope("sample.oracle");
        BoardOracle::default().measure_graph(design, &work)
    };
    // The work graph held the last shared reference to the trace arena;
    // dropping it lets the scratch take the allocation back for the next
    // design point.
    drop(work);
    scratch.reclaim(trace);
    Sample {
        kernel: kernel.name.clone(),
        design_id: design.design_id(),
        directives: design.directives.clone(),
        graph,
        power,
        latency: design.report.latency_cycles,
        report: design.report.clone(),
    }
}

/// Builds one sample through a shared [`HlsCache`], so identical
/// kernel+directive pairs are synthesized only once per process.
pub fn build_sample_cached(
    kernel: &Kernel,
    directives: &Directives,
    stimuli: &Stimuli,
    baseline: &HlsReport,
    cache: &HlsCache,
) -> Sample {
    let design = cache
        .run(kernel, directives)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    sample_from_design(kernel, &design, stimuli, baseline)
}

/// Builds one sample with a private single-use flow. Prefer
/// [`build_sample_cached`] when several callers share designs — the
/// parallel dataset builder goes through that path.
pub fn build_sample(
    kernel: &Kernel,
    directives: &Directives,
    stimuli: &Stimuli,
    baseline: &HlsReport,
) -> Sample {
    build_sample_cached(kernel, directives, stimuli, baseline, &HlsCache::new())
}

/// Builds the dataset for one kernel through a shared [`HlsCache`].
///
/// Sample order, labels and graphs are bit-identical to the uncached
/// [`build_kernel_dataset`]; only redundant synthesis work is skipped.
///
/// Two parallel phases, both dynamically load-balanced (see the module
/// docs): cold synthesis of the whole directive space through a
/// [`KernelSession`](crate::cache::KernelSession), then sample assembly
/// (trace → graph → labels) over the now-warm cache.
pub fn build_kernel_dataset_cached(
    kernel: &Kernel,
    cfg: &DatasetConfig,
    cache: &HlsCache,
) -> KernelDataset {
    let session = cache
        .session(kernel)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    let stimuli = Stimuli::for_kernel(kernel, cfg.seed);
    let baseline = session
        .run(&Directives::new())
        .unwrap_or_else(|e| panic!("{} baseline: {e}", kernel.name))
        .report
        .clone();
    let configs = sample_space(kernel, cfg.max_samples, cfg.seed);

    // Phase 1: cold synthesis across the directive space (work-stealing).
    session
        .populate(&configs, cfg.threads)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));

    // Phase 2: sample assembly over the warm cache. Every `session.run`
    // below is a cache hit; workers pull design points off an atomic
    // cursor and results are re-ordered by index, so sample order, labels
    // and graphs never depend on the thread count. Each worker owns one
    // [`TraceScratch`], so the trace arena and row buffers are recycled
    // across all design points the worker steals.
    let assemble = |d: &Directives, scratch: &mut TraceScratch| {
        let design = session
            .run(d)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        sample_from_design_in(kernel, &design, &stimuli, &baseline, scratch)
    };
    let samples: Vec<Sample> = if cfg.threads <= 1 || configs.len() < 4 {
        let mut scratch = TraceScratch::new();
        configs.iter().map(|d| assemble(d, &mut scratch)).collect()
    } else {
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let done: std::sync::Mutex<Vec<(usize, Sample)>> =
            std::sync::Mutex::new(Vec::with_capacity(configs.len()));
        std::thread::scope(|scope| {
            let workers = cfg.threads.min(configs.len());
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = TraceScratch::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(d) = configs.get(i) else { break };
                        let s = assemble(d, &mut scratch);
                        done.lock().expect("sample lock").push((i, s));
                    }
                });
            }
        });
        let mut done = done.into_inner().expect("sample lock");
        done.sort_by_key(|(i, _)| *i);
        done.into_iter().map(|(_, s)| s).collect()
    };

    KernelDataset {
        kernel: kernel.name.clone(),
        size: cfg.size,
        samples,
        baseline,
    }
}

/// Builds the dataset for one kernel (fresh cache per call).
pub fn build_kernel_dataset(kernel: &Kernel, cfg: &DatasetConfig) -> KernelDataset {
    build_kernel_dataset_cached(kernel, cfg, &HlsCache::new())
}

/// Builds datasets for all nine Polybench kernels, sharing one HLS cache
/// across them.
pub fn build_all(cfg: &DatasetConfig) -> Vec<KernelDataset> {
    let cache = HlsCache::new();
    crate::polybench::polybench(cfg.size)
        .iter()
        .map(|k| build_kernel_dataset_cached(k, cfg, &cache))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn profiles_scale_as_documented() {
        assert_eq!(DatasetConfig::default().max_samples, 500);
        assert_eq!(DatasetConfig::paper().max_samples, 500);
        assert_eq!(DatasetConfig::paper_xl().max_samples, 1000);
        assert_eq!(DatasetConfig::quick().max_samples, 96);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_samples() {
        // One shared scratch across several design points must reproduce
        // the fresh-buffer samples exactly.
        let k = polybench::mvt(6);
        let cache = HlsCache::new();
        let session = cache.session(&k).unwrap();
        let stimuli = Stimuli::for_kernel(&k, 1);
        let baseline = session.run(&Directives::new()).unwrap().report.clone();
        let configs = crate::space::sample_space(&k, 6, 1);
        let mut scratch = TraceScratch::new();
        for d in &configs {
            let design = session.run(d).unwrap();
            let fresh = sample_from_design(&k, &design, &stimuli, &baseline);
            let reused = sample_from_design_in(&k, &design, &stimuli, &baseline, &mut scratch);
            assert_eq!(fresh, reused, "scratch reuse changed sample {d}");
        }
    }

    #[test]
    fn builds_labeled_samples() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        assert_eq!(ds.samples.len(), 10);
        assert!(ds.samples[0].directives.is_baseline());
        for s in &ds.samples {
            assert!(s.graph.validate().is_ok());
            assert_eq!(s.graph.meta.len(), 10);
            assert!(s.power.total > s.power.dynamic);
            assert!(s.latency > 0);
        }
        assert!(ds.avg_nodes() > 5.0);
    }

    #[test]
    fn labels_differ_across_design_points() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        let first = ds.samples[0].power.dynamic;
        assert!(
            ds.samples
                .iter()
                .any(|s| (s.power.dynamic - first).abs() > 1e-6),
            "dynamic power must vary across the space"
        );
        let labeled = ds.labeled(PowerTarget::Dynamic);
        assert_eq!(labeled.len(), ds.samples.len());
        assert!(labeled.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn parallel_build_matches_serial() {
        let k = polybench::mvt(6);
        let mut cfg = DatasetConfig::tiny();
        let serial = build_kernel_dataset(&k, &cfg);
        cfg.threads = 2;
        let parallel = build_kernel_dataset(&k, &cfg);
        assert_eq!(serial.samples.len(), parallel.samples.len());
        for (a, b) in serial.samples.iter().zip(&parallel.samples) {
            assert_eq!(a.design_id, b.design_id);
            assert_eq!(a.power, b.power);
        }
    }

    #[test]
    fn cached_build_matches_uncached_and_hits() {
        let k = polybench::mvt(6);
        let cfg = DatasetConfig::tiny();
        let cold = build_kernel_dataset(&k, &cfg);
        let cache = HlsCache::new();
        let first = build_kernel_dataset_cached(&k, &cfg, &cache);
        assert_eq!(cold, first, "cache must not change dataset contents");
        // baseline report + baseline sample share one synthesis
        assert!(cache.hits() >= 1, "baseline design must hit");
        let hits_before = cache.hits();
        let misses_before = cache.misses();
        let second = build_kernel_dataset_cached(&k, &cfg, &cache);
        assert_eq!(first, second);
        // the rebuild is served entirely from cache: baseline + populate
        // phase + assembly phase all hit, and nothing is re-synthesized
        assert_eq!(cache.misses(), misses_before, "rebuild must not synthesize");
        assert_eq!(
            cache.hits() - hits_before,
            2 * cfg.max_samples + 1,
            "rebuild must be all hits"
        );
    }

    #[test]
    fn metadata_scaling_is_unity_for_baseline() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        let meta = &ds.samples[0].graph.meta;
        for v in &meta[5..10] {
            assert!(
                (*v - 1.0).abs() < 1e-5,
                "baseline ratios must be 1, got {v}"
            );
        }
    }
}
