//! End-to-end dataset construction: kernel + directive sample → HLS →
//! activity trace → power graph (with metadata features) → oracle labels.
//!
//! This is the "training stage" data collection of Fig. 1, with the
//! RTL-implementation + on-board measurement replaced by the `pg-powersim`
//! oracle. Samples are built in parallel across worker threads and are
//! bit-deterministic for a given configuration.

use crate::cache::HlsCache;
use crate::space::sample_space;
use pg_activity::{execute, Stimuli};
use pg_graphcon::{GraphFlow, PowerGraph};
use pg_hls::{Directives, HlsDesign, HlsReport};
use pg_ir::Kernel;
use pg_powersim::{BoardOracle, PowerBreakdown};

/// Dataset construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Problem size of the Polybench kernels.
    pub size: usize,
    /// Maximum design points per kernel (paper: ~500).
    pub max_samples: usize,
    /// Sampling / stimuli seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            size: 16,
            max_samples: 96,
            seed: 1,
            threads: 2,
        }
    }
}

impl DatasetConfig {
    /// A smaller configuration for unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            size: 6,
            max_samples: 10,
            seed: 1,
            threads: 1,
        }
    }
}

/// One labeled design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Source kernel.
    pub kernel: String,
    /// Design-point identifier.
    pub design_id: String,
    /// The directive configuration (kept so estimators can re-synthesize).
    pub directives: Directives,
    /// The annotated graph (metadata features filled in).
    pub graph: PowerGraph,
    /// Ground-truth power from the board oracle.
    pub power: PowerBreakdown,
    /// Design latency in cycles.
    pub latency: u64,
    /// HLS report of this design point.
    pub report: HlsReport,
}

/// Which power figure a model regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerTarget {
    /// Total (dynamic + static) power.
    Total,
    /// Dynamic power only.
    Dynamic,
}

impl Sample {
    /// The regression target for `target`.
    pub fn label(&self, target: PowerTarget) -> f64 {
        match target {
            PowerTarget::Total => self.power.total,
            PowerTarget::Dynamic => self.power.dynamic,
        }
    }
}

/// All samples of one kernel plus its unoptimized baseline report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDataset {
    /// Kernel name.
    pub kernel: String,
    /// Problem size used.
    pub size: usize,
    /// Labeled samples (baseline configuration first).
    pub samples: Vec<Sample>,
    /// Report of the unoptimized baseline (scaling-factor reference).
    pub baseline: HlsReport,
}

impl KernelDataset {
    /// Mean node count across sample graphs (Table I "Avg. #Nodes").
    pub fn avg_nodes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.graph.num_nodes as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Labeled `(graph, value)` views for training.
    pub fn labeled(&self, target: PowerTarget) -> Vec<(&PowerGraph, f64)> {
        self.samples
            .iter()
            .map(|s| (&s.graph, s.label(target)))
            .collect()
    }
}

/// Labels one already-synthesized design (trace → graph → metadata →
/// oracle power).
pub fn sample_from_design(
    kernel: &Kernel,
    design: &HlsDesign,
    stimuli: &Stimuli,
    baseline: &HlsReport,
) -> Sample {
    let trace = execute(design, stimuli);
    let mut graph = GraphFlow::new().build(design, &trace);
    graph.meta = design
        .report
        .metadata_features(baseline)
        .into_iter()
        .map(|v| v as f32)
        .collect();
    let power = BoardOracle::default().measure(design, &trace);
    Sample {
        kernel: kernel.name.clone(),
        design_id: design.design_id(),
        directives: design.directives.clone(),
        graph,
        power,
        latency: design.report.latency_cycles,
        report: design.report.clone(),
    }
}

/// Builds one sample through a shared [`HlsCache`], so identical
/// kernel+directive pairs are synthesized only once per process.
pub fn build_sample_cached(
    kernel: &Kernel,
    directives: &Directives,
    stimuli: &Stimuli,
    baseline: &HlsReport,
    cache: &HlsCache,
) -> Sample {
    let design = cache
        .run(kernel, directives)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    sample_from_design(kernel, &design, stimuli, baseline)
}

/// Builds one sample with a private single-use flow. Prefer
/// [`build_sample_cached`] when several callers share designs — the
/// parallel dataset builder goes through that path.
pub fn build_sample(
    kernel: &Kernel,
    directives: &Directives,
    stimuli: &Stimuli,
    baseline: &HlsReport,
) -> Sample {
    build_sample_cached(kernel, directives, stimuli, baseline, &HlsCache::new())
}

/// Builds the dataset for one kernel through a shared [`HlsCache`].
///
/// Sample order, labels and graphs are bit-identical to the uncached
/// [`build_kernel_dataset`]; only redundant synthesis work is skipped.
pub fn build_kernel_dataset_cached(
    kernel: &Kernel,
    cfg: &DatasetConfig,
    cache: &HlsCache,
) -> KernelDataset {
    let stimuli = Stimuli::for_kernel(kernel, cfg.seed);
    let baseline = cache
        .run(kernel, &Directives::new())
        .unwrap_or_else(|e| panic!("{} baseline: {e}", kernel.name))
        .report
        .clone();
    let configs = sample_space(kernel, cfg.max_samples, cfg.seed);

    let samples: Vec<Sample> = if cfg.threads <= 1 || configs.len() < 4 {
        configs
            .iter()
            .map(|d| build_sample_cached(kernel, d, &stimuli, &baseline, cache))
            .collect()
    } else {
        let chunk = configs.len().div_ceil(cfg.threads);
        let mut out: Vec<Vec<Sample>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = configs
                .chunks(chunk)
                .map(|part| {
                    let stimuli = &stimuli;
                    let baseline = &baseline;
                    scope.spawn(move || {
                        part.iter()
                            .map(|d| build_sample_cached(kernel, d, stimuli, baseline, cache))
                            .collect::<Vec<Sample>>()
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("dataset worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    };

    KernelDataset {
        kernel: kernel.name.clone(),
        size: cfg.size,
        samples,
        baseline,
    }
}

/// Builds the dataset for one kernel (fresh cache per call).
pub fn build_kernel_dataset(kernel: &Kernel, cfg: &DatasetConfig) -> KernelDataset {
    build_kernel_dataset_cached(kernel, cfg, &HlsCache::new())
}

/// Builds datasets for all nine Polybench kernels, sharing one HLS cache
/// across them.
pub fn build_all(cfg: &DatasetConfig) -> Vec<KernelDataset> {
    let cache = HlsCache::new();
    crate::polybench::polybench(cfg.size)
        .iter()
        .map(|k| build_kernel_dataset_cached(k, cfg, &cache))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polybench;

    #[test]
    fn builds_labeled_samples() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        assert_eq!(ds.samples.len(), 10);
        assert!(ds.samples[0].directives.is_baseline());
        for s in &ds.samples {
            assert!(s.graph.validate().is_ok());
            assert_eq!(s.graph.meta.len(), 10);
            assert!(s.power.total > s.power.dynamic);
            assert!(s.latency > 0);
        }
        assert!(ds.avg_nodes() > 5.0);
    }

    #[test]
    fn labels_differ_across_design_points() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        let first = ds.samples[0].power.dynamic;
        assert!(
            ds.samples
                .iter()
                .any(|s| (s.power.dynamic - first).abs() > 1e-6),
            "dynamic power must vary across the space"
        );
        let labeled = ds.labeled(PowerTarget::Dynamic);
        assert_eq!(labeled.len(), ds.samples.len());
        assert!(labeled.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn parallel_build_matches_serial() {
        let k = polybench::mvt(6);
        let mut cfg = DatasetConfig::tiny();
        let serial = build_kernel_dataset(&k, &cfg);
        cfg.threads = 2;
        let parallel = build_kernel_dataset(&k, &cfg);
        assert_eq!(serial.samples.len(), parallel.samples.len());
        for (a, b) in serial.samples.iter().zip(&parallel.samples) {
            assert_eq!(a.design_id, b.design_id);
            assert_eq!(a.power, b.power);
        }
    }

    #[test]
    fn cached_build_matches_uncached_and_hits() {
        let k = polybench::mvt(6);
        let cfg = DatasetConfig::tiny();
        let cold = build_kernel_dataset(&k, &cfg);
        let cache = HlsCache::new();
        let first = build_kernel_dataset_cached(&k, &cfg, &cache);
        assert_eq!(cold, first, "cache must not change dataset contents");
        // baseline report + baseline sample share one synthesis
        assert!(cache.hits() >= 1, "baseline design must hit");
        let hits_before = cache.hits();
        let second = build_kernel_dataset_cached(&k, &cfg, &cache);
        assert_eq!(first, second);
        // the rebuild is served entirely from cache
        assert_eq!(
            cache.hits() - hits_before,
            cfg.max_samples + 1,
            "rebuild must be all hits"
        );
    }

    #[test]
    fn metadata_scaling_is_unity_for_baseline() {
        let k = polybench::mvt(6);
        let ds = build_kernel_dataset(&k, &DatasetConfig::tiny());
        let meta = &ds.samples[0].graph.meta;
        for v in &meta[5..10] {
            assert!(
                (*v - 1.0).abs() < 1e-5,
                "baseline ratios must be 1, got {v}"
            );
        }
    }
}
