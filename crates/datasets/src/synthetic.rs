//! Synthetic kernel generator.
//!
//! The paper "include\[s\] some synthetic datasets to increase the diversity
//! of loop patterns in training" (§IV). This generator emits random affine
//! kernels: 1–2 loop nests of depth 1–3 over randomly-shaped arrays, with
//! random multiply-accumulate expression trees — structurally similar to
//! Polybench but with fresh loop patterns.

use pg_ir::expr::{aff, AffineExpr, Expr};
use pg_ir::{ArrayKind, Kernel, KernelBuilder};
use pg_util::Rng64;

/// Generates `count` random kernels of problem size `n`.
pub fn synthetic_kernels(count: usize, n: usize, seed: u64) -> Vec<Kernel> {
    (0..count).map(|i| synthetic_kernel(i, n, seed)).collect()
}

/// Generates the `index`-th synthetic kernel.
pub fn synthetic_kernel(index: usize, n: usize, seed: u64) -> Kernel {
    let mut rng = Rng64::new(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let name = format!("synth{index}");
    let num_inputs = 1 + rng.below(3);
    let mut b = KernelBuilder::new(&name);
    let mut arrays_1d: Vec<String> = Vec::new();
    let mut arrays_2d: Vec<String> = Vec::new();
    for a in 0..num_inputs {
        let nm = format!("in{a}");
        if rng.bool(0.5) {
            b = b.array(&nm, &[n, n], ArrayKind::Input);
            arrays_2d.push(nm);
        } else {
            b = b.array(&nm, &[n], ArrayKind::Input);
            arrays_1d.push(nm);
        }
    }
    b = b.array("out", &[n, n], ArrayKind::Output);
    if rng.bool(0.4) {
        b = b.scalar("alpha");
    }
    let has_alpha = rng.clone(); // snapshot irrelevant; track via flag below
    let _ = has_alpha;
    let use_alpha = {
        // rebuild deterministic flag: whether the scalar was added
        // (mirrors the bool drawn above; we re-derive from builder state)
        false
    };
    let _ = use_alpha;

    let depth = 2 + rng.below(2); // 2 or 3 loop dims
    let vars: Vec<String> = (0..depth).map(|d| format!("v{d}")).collect();

    // expression over available arrays using the two outermost vars
    let load_2d = |arr: &str, i: &str, j: &str| Expr::load(arr, vec![aff(i), aff(j)]);
    let load_1d = |arr: &str, i: &str| Expr::load(arr, vec![aff(i)]);

    let mk_term = |rng: &mut Rng64, i: &str, j: &str| -> Expr {
        if !arrays_2d.is_empty() && rng.bool(0.6) {
            let a = arrays_2d[rng.below(arrays_2d.len())].clone();
            load_2d(&a, i, j)
        } else if !arrays_1d.is_empty() {
            let a = arrays_1d[rng.below(arrays_1d.len())].clone();
            load_1d(&a, if rng.bool(0.5) { i } else { j })
        } else {
            Expr::Const(1.5)
        }
    };

    let (i, j) = (vars[0].clone(), vars[1].clone());
    let reduction = depth == 3;
    let kvar = if reduction {
        Some(vars[2].clone())
    } else {
        None
    };
    let mut rhs = Expr::load("out", vec![aff(&i), aff(&j)]);
    let terms = 1 + rng.below(2);
    for _ in 0..terms {
        let (iv, jv) = match &kvar {
            Some(k) if rng.bool(0.7) => (i.clone(), k.clone()),
            _ => (i.clone(), j.clone()),
        };
        let t1 = mk_term(&mut rng, &iv, &jv);
        let t2 = mk_term(&mut rng, &jv, &iv);
        let product = t1 * t2;
        rhs = if rng.bool(0.8) {
            rhs + product
        } else {
            rhs - product
        };
    }

    let target: (&str, Vec<AffineExpr>) = ("out", vec![aff(&i), aff(&j)]);
    let built = match depth {
        2 => b.loop_(&i, n, |lb| {
            lb.loop_(&j, n, |lb| {
                lb.assign(target.clone(), rhs.clone());
            });
        }),
        _ => {
            let k = kvar.expect("depth 3 has a reduction var");
            b.loop_(&i, n, move |lb| {
                lb.loop_(&j, n, |lb| {
                    lb.loop_(&k, n, |lb| {
                        lb.assign(target.clone(), rhs.clone());
                    });
                });
            })
        }
    };
    built.build().expect("synthetic kernel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_hls::{Directives, HlsFlow};

    #[test]
    fn generates_valid_kernels() {
        let ks = synthetic_kernels(12, 6, 99);
        assert_eq!(ks.len(), 12);
        for k in &ks {
            assert!(k.validate().is_ok(), "{} invalid", k.name);
        }
    }

    #[test]
    fn kernels_synthesize() {
        for k in synthetic_kernels(6, 6, 7) {
            HlsFlow::new()
                .run(&k, &Directives::new())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn deterministic_and_diverse() {
        let a = synthetic_kernels(8, 6, 3);
        let b = synthetic_kernels(8, 6, 3);
        assert_eq!(a, b);
        // at least two distinct loop depths across the batch
        let depths: std::collections::HashSet<usize> =
            a.iter().map(|k| k.loop_labels().len()).collect();
        assert!(depths.len() >= 2, "expected diverse loop patterns");
    }

    #[test]
    fn names_are_unique() {
        let ks = synthetic_kernels(10, 6, 1);
        let names: std::collections::HashSet<String> = ks.iter().map(|k| k.name.clone()).collect();
        assert_eq!(names.len(), 10);
    }
}
