//! Property and end-to-end tests for the workspace metrics layer
//! (`pg_util::metrics`) and its `StatsV2` wire format.
//!
//! Three layers, mirroring the store/serve corruption suites:
//!
//! 1. **Histogram properties** — bucket counts always sum to the
//!    observation count, and merging per-thread shards is
//!    order-independent and bit-exact (the registry's determinism
//!    contract: integer storage, fixed-order summation).
//! 2. **StatsV2 codec properties** — arbitrary snapshots roundtrip the
//!    wire bit-exactly; truncated or bit-flipped payloads produce typed
//!    errors, never panics.
//! 3. **Socket end-to-end** — a live daemon driven by 4 concurrent
//!    clients reports per-model counters that match the client-side
//!    tallies *exactly* (every request counted once, every graph once).

use proptest::prelude::*;

use powergear_repro::gnn::{Ensemble, ModelConfig, PowerModel};
use powergear_repro::graphcon::{PowerGraph, Relation};
use powergear_repro::powergear::daemon::{Daemon, DaemonConfig, DaemonHandle};
use powergear_repro::powergear::PowerGear;
use powergear_repro::store::frame::{
    self, FrameType, PredictRequest, PredictResponse, RawFrame, StatsV2Response,
};
use powergear_repro::store::{ArtifactMeta, ModelRegistry, StoreError};
use powergear_repro::util::metrics::{
    self, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Helpers

/// The registry is process-global and tests run concurrently, so every
/// property case registers under a fresh name.
fn unique(tag: &str) -> String {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    format!("prop_{tag}_{}_us", SEQ.fetch_add(1, Ordering::Relaxed))
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pg_metrics_props_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// 1. Histogram properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-bucket counts partition the observations: they sum to `count`,
    /// and `sum` is the exact integer sum of the observed values.
    #[test]
    fn bucket_counts_sum_to_observations(
        values in prop::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let name = unique("sum");
        let h = metrics::histogram(&name, metrics::buckets::LATENCY_US);
        for &v in &values {
            h.observe(v);
        }
        let snap = metrics::snapshot();
        let hs = snap.histogram(&name, &[]).expect("histogram registered");
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.buckets.iter().map(|&(_, c)| c).sum::<u64>(), hs.count);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        // The final bound is the +inf catch-all, so nothing can escape.
        prop_assert_eq!(hs.buckets.last().map(|&(ub, _)| ub), Some(u64::MAX));
    }

    /// Observing the same multiset of values — sequentially, reversed, or
    /// interleaved across threads — yields bit-identical snapshots: the
    /// shard merge is a fixed-order integer sum, so scheduling can never
    /// leak into the numbers.
    #[test]
    fn merge_is_order_independent_and_bit_exact(
        values in prop::collection::vec(0u64..1_000_000, 1..300),
        threads in 1usize..6,
    ) {
        let seq_name = unique("seq");
        let rev_name = unique("rev");
        let thr_name = unique("thr");
        let seq = metrics::histogram(&seq_name, metrics::buckets::LATENCY_US);
        for &v in &values {
            seq.observe(v);
        }
        let rev = metrics::histogram(&rev_name, metrics::buckets::LATENCY_US);
        for &v in values.iter().rev() {
            rev.observe(v);
        }
        let thr = metrics::histogram(&thr_name, metrics::buckets::LATENCY_US);
        thread::scope(|s| {
            for t in 0..threads {
                let thr = thr.clone();
                let vals: Vec<u64> = values.iter().copied().skip(t).step_by(threads).collect();
                s.spawn(move || {
                    for v in vals {
                        thr.observe(v);
                    }
                });
            }
        });
        let snap = metrics::snapshot();
        let a = snap.histogram(&seq_name, &[]).unwrap();
        let b = snap.histogram(&rev_name, &[]).unwrap();
        let c = snap.histogram(&thr_name, &[]).unwrap();
        prop_assert_eq!((a.count, a.sum, &a.buckets), (b.count, b.sum, &b.buckets));
        prop_assert_eq!((a.count, a.sum, &a.buckets), (c.count, c.sum, &c.buckets));
    }

    /// Percentiles are monotone in `q` and the mean is the exact integer
    /// ratio `sum / count`.
    #[test]
    fn percentiles_are_monotone(
        values in prop::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let name = unique("pct");
        let h = metrics::histogram(&name, metrics::buckets::LATENCY_US);
        for &v in &values {
            h.observe(v);
        }
        let snap = metrics::snapshot();
        let hs = snap.histogram(&name, &[]).unwrap();
        let p50 = hs.percentile(0.5).unwrap();
        let p95 = hs.percentile(0.95).unwrap();
        let p100 = hs.percentile(1.0).unwrap();
        prop_assert!(p50 <= p95 && p95 <= p100);
        let expect_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((hs.mean() - expect_mean).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// 2. StatsV2 codec properties

/// Label pairs from a small pool (the codec treats them as opaque UTF-8).
fn arb_labels() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["model", "kernel", "tier"]),
            prop::sample::select(vec!["bicg", "atax-v2", "m", ""]),
        ),
        0..3,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec((0u32..6, arb_labels(), any::<u64>()), 0..5),
        prop::collection::vec((0u32..6, arb_labels(), any::<i64>()), 0..4),
        prop::collection::vec(
            (
                0u32..6,
                arb_labels(),
                prop::collection::vec((any::<u64>(), any::<u64>()), 1..8),
            ),
            0..4,
        ),
    )
        .prop_map(|(cs, gs, hs)| MetricsSnapshot {
            counters: cs
                .into_iter()
                .map(|(i, labels, value)| CounterSnapshot {
                    name: format!("c{i}_total"),
                    labels,
                    value,
                })
                .collect(),
            gauges: gs
                .into_iter()
                .map(|(i, labels, value)| GaugeSnapshot {
                    name: format!("g{i}_depth"),
                    labels,
                    value,
                })
                .collect(),
            histograms: hs
                .into_iter()
                .map(|(i, labels, buckets)| HistogramSnapshot {
                    name: format!("h{i}_us"),
                    labels,
                    count: buckets
                        .iter()
                        .map(|&(_, c)| c)
                        .fold(0u64, u64::wrapping_add),
                    sum: buckets
                        .iter()
                        .map(|&(ub, _)| ub)
                        .fold(0u64, u64::wrapping_add),
                    buckets,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary snapshots survive the wire bit-exactly, including
    /// negative gauges (two's-complement transport) and +inf bounds.
    #[test]
    fn stats_v2_roundtrips_bit_exactly(
        snapshot in arb_snapshot(),
        uptime_bits in any::<u64>(),
    ) {
        // Any finite uptime; NaN would break PartialEq, not the codec.
        let uptime_s = f64::from_bits(uptime_bits % (1u64 << 62)).abs();
        let uptime_s = if uptime_s.is_finite() { uptime_s } else { 0.0 };
        let v2 = StatsV2Response { uptime_s, snapshot };
        let back = StatsV2Response::from_payload(&v2.to_payload()).unwrap();
        prop_assert_eq!(v2.uptime_s.to_bits(), back.uptime_s.to_bits());
        prop_assert_eq!(v2.snapshot, back.snapshot);
    }

    /// Every proper prefix of a valid payload decodes to a typed error —
    /// never a panic, never a silent partial decode.
    #[test]
    fn stats_v2_truncation_is_typed(snapshot in arb_snapshot()) {
        let payload = StatsV2Response { uptime_s: 1.5, snapshot }.to_payload();
        for cut in 0..payload.len() {
            match StatsV2Response::from_payload(&payload[..cut]) {
                Err(StoreError::Truncated { .. })
                | Err(StoreError::Corrupt { .. })
                | Err(StoreError::UnsupportedVersion { .. }) => {}
                Err(other) => prop_assert!(false, "cut {cut}: unexpected error {other:?}"),
                Ok(_) => prop_assert!(false, "cut {cut}: decoded a truncated payload"),
            }
        }
    }

    /// Single bit flips never panic: they either decode (the flipped bit
    /// landed in a value) or surface as a typed error (it landed in a
    /// length, tag, or the format version). Frame-level CRC catches
    /// flips in transit; this guards the decoder itself.
    #[test]
    fn stats_v2_bit_flips_never_panic(
        snapshot in arb_snapshot(),
        flip_seed in any::<u64>(),
    ) {
        let mut payload = StatsV2Response { uptime_s: 0.25, snapshot }.to_payload();
        let bit = (flip_seed % (payload.len() as u64 * 8)) as usize;
        payload[bit / 8] ^= 1 << (bit % 8);
        let _ = StatsV2Response::from_payload(&payload);
    }
}

// ---------------------------------------------------------------------------
// 3. Socket end-to-end: exact per-model accounting

fn tiny_gear(seed: u64) -> PowerGear {
    let cfg = ModelConfig::hec(8);
    PowerGear {
        total_model: Ensemble {
            models: vec![PowerModel::new(cfg.clone(), seed)],
        },
        dynamic_model: Ensemble {
            models: vec![PowerModel::new(cfg, seed ^ 0xbeef)],
        },
    }
}

fn graph(seed: u64) -> PowerGraph {
    let nodes = 3 + (seed % 4) as usize;
    let f = PowerGraph::NODE_FEATS;
    let mut node_feats = vec![0.0f32; nodes * f];
    for n in 0..nodes {
        node_feats[n * f + (seed as usize + n) % f] = 1.0;
    }
    let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
    let ne = edges.len();
    PowerGraph {
        kernel: "mprops".into(),
        design_id: format!("m{seed}"),
        num_nodes: nodes,
        node_feats,
        edges,
        edge_feats: (0..ne).map(|i| [0.1 * i as f32, 0.2, 0.3, 0.4]).collect(),
        edge_rel: (0..ne)
            .map(|i| match i % 4 {
                0 => Relation::AA,
                1 => Relation::AN,
                2 => Relation::NA,
                _ => Relation::NN,
            })
            .collect(),
        meta: vec![0.5; 10],
    }
}

fn publish(dir: &Path, name: &str, kernel: &str, gear: &PowerGear) {
    let reg = ModelRegistry::open(dir).unwrap();
    let meta = ArtifactMeta::now(kernel, "total+dynamic");
    reg.publish(name, &gear.to_artifact(meta, &[], 0)).unwrap();
}

fn daemon_on(dir: &Path) -> DaemonHandle {
    let mut cfg = DaemonConfig::new("127.0.0.1:0");
    cfg.registry_dir = Some(dir.to_path_buf());
    cfg.batch_deadline = Duration::from_micros(200);
    cfg.poll_interval = Duration::from_millis(10);
    Daemon::bind(cfg).unwrap().spawn()
}

/// 4 concurrent clients, varying request sizes; afterwards the daemon's
/// per-model `StatsV2` counters must equal the client tallies exactly:
/// every request counted once, every graph once, the batch-size
/// histogram internally consistent with the batch counter.
#[test]
fn four_client_workload_is_counted_exactly() {
    let dir = tmp_dir("e2e");
    let gear = tiny_gear(23);
    // Unique model/kernel names: the metrics registry is process-global,
    // so only uniquely-labeled series can be asserted exactly.
    publish(&dir, "mprops-v1", "mprops", &gear);
    let handle = daemon_on(&dir);
    let addr = handle.addr();

    let graphs: Vec<PowerGraph> = (0..5).map(graph).collect();
    const CLIENTS: usize = 4;
    const REQUESTS: usize = 6;
    let mut expected_graphs = 0u64;
    for c in 0..CLIENTS {
        for r in 0..REQUESTS {
            expected_graphs += (1 + (c + r) % 3) as u64;
        }
    }

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let graphs = graphs.clone();
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                for r in 0..REQUESTS {
                    let per = 1 + (c + r) % 3;
                    let req = PredictRequest {
                        kernel: "mprops".into(),
                        graphs: (0..per)
                            .map(|i| graphs[(c + r + i) % graphs.len()].clone())
                            .collect(),
                    };
                    frame::write_frame(
                        &mut s,
                        &RawFrame::new(FrameType::Predict, req.to_payload()),
                    )
                    .unwrap();
                    let resp = frame::read_frame(&mut s).unwrap().expect("response");
                    assert_eq!(resp.frame_type(), Some(FrameType::PredictOk));
                    let out = PredictResponse::from_payload(&resp.payload).unwrap();
                    assert_eq!(out.model, "mprops-v1");
                    assert_eq!(out.predictions.len(), per);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Fetch StatsV2 over the same socket protocol a real client uses.
    let mut s = TcpStream::connect(addr).unwrap();
    frame::write_frame(&mut s, &RawFrame::new(FrameType::StatsV2, Vec::new())).unwrap();
    let resp = frame::read_frame(&mut s).unwrap().expect("stats response");
    assert_eq!(resp.frame_type(), Some(FrameType::StatsV2Ok));
    let v2 = StatsV2Response::from_payload(&resp.payload).unwrap();

    let labels = [("model", "mprops-v1")];
    let total_reqs = (CLIENTS * REQUESTS) as u64;
    assert_eq!(
        v2.snapshot.counter_value("serve_requests_total", &labels),
        Some(total_reqs),
        "every request counted exactly once"
    );
    assert_eq!(
        v2.snapshot.counter_value("serve_graphs_total", &labels),
        Some(expected_graphs),
        "every graph counted exactly once"
    );
    let batches = v2
        .snapshot
        .counter_value("serve_batches_total", &labels)
        .expect("batch counter");
    assert!(batches >= 1 && batches <= total_reqs);
    let bs = v2
        .snapshot
        .histogram("serve_batch_size_graphs", &labels)
        .expect("batch-size histogram");
    assert_eq!(bs.count, batches, "one batch-size sample per batch");
    assert_eq!(
        bs.sum, expected_graphs,
        "batch sizes sum to the graph total"
    );
    let st = v2
        .snapshot
        .histogram("serve_service_time_us", &labels)
        .expect("service-time histogram");
    assert_eq!(st.count, batches, "one service-time sample per batch");
    assert_eq!(
        v2.snapshot.gauge_value("serve_queue_depth", &[]),
        Some(0),
        "queue drained"
    );

    // The daemon's v1 atomic counters and the registry agree.
    let v1 = handle.stats();
    assert_eq!(v1.requests, total_reqs);
    assert_eq!(v1.errors, 0);

    handle.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
