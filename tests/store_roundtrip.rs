//! Property tests for the `pg_store` persistence layer: saved artifacts
//! load back bit-exact, and corrupt containers produce typed errors —
//! never panics.

use proptest::prelude::*;

use powergear_repro::datasets::{
    build_kernel_dataset, load_dataset, polybench, save_dataset, DatasetConfig, HlsCache,
    PowerTarget,
};
use powergear_repro::gnn::{train_ensemble, Arch, Ensemble, ModelConfig, PowerModel, TrainConfig};
use powergear_repro::graphcon::{PowerGraph, Relation};
use powergear_repro::hls::Directives;
use powergear_repro::store::{ArtifactMeta, ModelArtifact, ModelRegistry, StoreError};
use powergear_repro::util::Rng64;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique temp path per call so concurrently running cases never collide.
fn tmp_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "pg_store_rt_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn random_graph(seed: u64) -> PowerGraph {
    let mut rng = Rng64::new(seed);
    let nodes = 4 + rng.below(6);
    let f = PowerGraph::NODE_FEATS;
    let mut node_feats = vec![0.0f32; nodes * f];
    for n in 0..nodes {
        node_feats[n * f + rng.below(5)] = 1.0;
        node_feats[n * f + 28 + rng.below(6)] = rng.f32();
    }
    let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
    let ne = edges.len();
    PowerGraph {
        kernel: "rt".into(),
        design_id: format!("rt{seed}"),
        num_nodes: nodes,
        node_feats,
        edges,
        edge_feats: (0..ne)
            .map(|_| [rng.f32(), rng.f32(), rng.f32() * 0.5, rng.f32() * 0.5])
            .collect(),
        edge_rel: (0..ne)
            .map(|i| match i % 4 {
                0 => Relation::AA,
                1 => Relation::AN,
                2 => Relation::NA,
                _ => Relation::NN,
            })
            .collect(),
        meta: (0..10).map(|_| rng.f32()).collect(),
    }
}

fn arb_config() -> impl Strategy<Value = ModelConfig> {
    (
        prop::sample::select(vec![
            Arch::Hec,
            Arch::Gcn,
            Arch::Sage,
            Arch::GraphConv,
            Arch::Gine,
        ]),
        4usize..12,
        prop::bool::weighted(0.5),
        prop::bool::weighted(0.5),
    )
        .prop_map(|(arch, hidden, het, md)| {
            let mut cfg = if arch == Arch::Hec {
                ModelConfig::hec(hidden)
            } else {
                ModelConfig::baseline(arch, hidden)
            };
            if arch == Arch::Hec {
                cfg.heterogeneous = het;
                cfg.use_metadata = md;
            }
            cfg
        })
}

fn artifact_with(models: Vec<PowerModel>, graphs: &[PowerGraph]) -> ModelArtifact {
    ModelArtifact {
        meta: ArtifactMeta::now("prop", "dynamic"),
        ensembles: vec![("dynamic".into(), Ensemble { models })],
        probe: None,
    }
    .with_probe(graphs, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load → predictions bit-identical to the in-memory ensemble,
    /// across architectures, widths, member counts and normalizations.
    #[test]
    fn saved_ensemble_predicts_bit_identically(
        cfg in arb_config(),
        members in 1usize..4,
        seed in 0u64..1_000,
        scale in 0.05f32..4.0,
        shift in 0.0f32..2.0,
    ) {
        let models: Vec<PowerModel> = (0..members)
            .map(|i| {
                let mut m = PowerModel::new(cfg.clone(), seed + i as u64);
                m.target_scale = scale;
                m.target_shift = shift * (i % 2) as f32;
                m
            })
            .collect();
        let graphs: Vec<PowerGraph> = (0..5).map(|i| random_graph(seed * 31 + i)).collect();
        let artifact = artifact_with(models, &graphs);

        let path = tmp_path("bits");
        artifact.save(&path).expect("save");
        let loaded = ModelArtifact::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        loaded.verify().expect("embedded probe must pass");
        prop_assert_eq!(&loaded, &artifact);
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let a: Vec<u64> = artifact.ensembles[0].1.predict(&refs).iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = loaded.ensembles[0].1.predict(&refs).iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    /// Any strict prefix of an artifact fails with a typed error — never a
    /// panic — because section bounds are validated before payloads load.
    #[test]
    fn truncated_artifact_is_a_typed_error(
        seed in 0u64..500,
        frac in 0.0f64..1.0,
    ) {
        let m = PowerModel::new(ModelConfig::hec(6), seed);
        let graphs: Vec<PowerGraph> = (0..2).map(|i| random_graph(seed + i)).collect();
        let bytes = artifact_with(vec![m], &graphs).to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        match ModelArtifact::from_bytes(bytes[..cut].to_vec()) {
            Ok(_) => prop_assert!(false, "strict prefix must not load"),
            Err(e) => {
                // the error renders without panicking too
                let _ = e.to_string();
            }
        }
    }

    /// A single flipped byte anywhere in the container is either caught by
    /// the CRC/structure checks (typed error) or lands in metadata the
    /// checks cover — in no case a panic, and never silently wrong
    /// predictions (the probe re-verifies the weights).
    #[test]
    fn bitflip_never_panics_and_never_corrupts_weights(
        seed in 0u64..500,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let m = PowerModel::new(ModelConfig::hec(6), seed);
        let graphs: Vec<PowerGraph> = (0..2).map(|i| random_graph(seed + 7 * i)).collect();
        let original = artifact_with(vec![m], &graphs);
        let mut bytes = original.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match ModelArtifact::from_bytes(bytes) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(loaded) => {
                // The flip survived structural checks (e.g. it hit a
                // section-table name and effectively dropped a section).
                // The self-verification probe must still hold for whatever
                // ensembles remain intact.
                loaded.verify().expect("loaded artifact must stay bit-exact");
            }
        }
    }
}

#[test]
fn trained_ensemble_roundtrip_through_registry() {
    // The acceptance-criteria path, in-process: train a real (tiny)
    // ensemble, publish it, load it in a fresh registry handle, and check
    // bit-identical predictions on unseen graphs.
    let ds = build_kernel_dataset(&polybench::mvt(6), &DatasetConfig::tiny());
    let data = ds.labeled(PowerTarget::Dynamic);
    let mut tc = TrainConfig::quick(ModelConfig::hec(8));
    tc.epochs = 3;
    tc.folds = 2;
    tc.threads = 1;
    let ensemble = train_ensemble(&data, &tc);

    let root = tmp_path("registry");
    let reg = ModelRegistry::open(&root).unwrap();
    let graphs: Vec<PowerGraph> = ds.samples.iter().map(|s| s.graph.clone()).collect();
    let artifact = ModelArtifact {
        meta: ArtifactMeta::now("mvt", "dynamic"),
        ensembles: vec![("dynamic".into(), ensemble.clone())],
        probe: None,
    }
    .with_probe(&graphs, 6);
    reg.publish("mvt-quick", &artifact).unwrap();

    let fresh = ModelRegistry::open(&root).unwrap();
    let loaded = fresh.load("mvt-quick").unwrap();
    loaded.verify().unwrap();
    let refs: Vec<&PowerGraph> = ds.samples.iter().map(|s| &s.graph).collect();
    let a: Vec<u64> = ensemble
        .predict(&refs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let b: Vec<u64> = loaded.ensembles[0]
        .1
        .predict(&refs)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(a, b, "registry roundtrip must be bit-identical");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_magic_and_future_version_are_typed() {
    assert!(matches!(
        ModelArtifact::from_bytes(b"GARBAGE!not a container".to_vec()),
        Err(StoreError::BadMagic { .. })
    ));
    let artifact = artifact_with(vec![PowerModel::new(ModelConfig::hec(4), 1)], &[]);
    let mut bytes = artifact.to_bytes();
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        ModelArtifact::from_bytes(bytes),
        Err(StoreError::UnsupportedVersion { .. })
    ));
}

#[test]
fn cache_spill_and_dataset_snapshot_cross_layer() {
    // Spill an HLS cache and a dataset snapshot, restore both, and check
    // the restored pair rebuilds bit-identical labeled data.
    let kernel = polybench::bicg(6);
    let cfg = DatasetConfig::tiny();
    let cache = HlsCache::new();
    let mut piped = Directives::new();
    piped.pipeline("j");
    cache.run(&kernel, &Directives::new()).unwrap();
    cache.run(&kernel, &piped).unwrap();

    let cache_path = tmp_path("spill");
    cache.save_to(&cache_path).unwrap();
    let warm = HlsCache::load_from(&cache_path).unwrap();
    assert_eq!(warm.len(), cache.len());
    let a = warm.run(&kernel, &piped).unwrap();
    let b = cache.run(&kernel, &piped).unwrap();
    assert_eq!(*a, *b, "restored design must equal the original");

    let ds = build_kernel_dataset(&kernel, &cfg);
    let snap_path = tmp_path("snap");
    save_dataset(&ds, &snap_path).unwrap();
    let back = load_dataset(&snap_path).unwrap();
    assert_eq!(ds, back, "snapshot must round-trip exactly");

    std::fs::remove_file(&cache_path).ok();
    std::fs::remove_file(&snap_path).ok();
}
