//! Property tests for the flat event arena and its compressed activity
//! streams (`pg_activity::events`).
//!
//! The arena is the storage layer every edge feature flows through, so
//! this wall pins, over random traces:
//!
//! * **round-trip exactness** — encode → decode reproduces any raw
//!   `(cycle, bits)` sequence bit-for-bit, for adversarial (incompressible)
//!   and repetitive (RLE-friendly) value mixes alike;
//! * **fold parity** — the streaming SA/AR folds over compressed runs are
//!   bit-identical (`f64::to_bits`) to the naive slice math of Eq. 2/3
//!   over the decoded events, as is the raw-column fold the interpreter
//!   uses before encoding;
//! * **merge parity** — the k-way compressed-domain merge (aligned-lane,
//!   time-disjoint concat and cursor paths) decodes to exactly the naive
//!   `merge_events` left fold;
//! * **SA/AR invariants** — `AR <= SA <= 32·AR` (every change toggles
//!   1..=32 bits), and constant streams fold to exactly zero.

use proptest::prelude::*;

use powergear_repro::activity::events::{
    decode, encode_affine, event_count, fold_sa_ar, merge_encoded, merge_streams_k, EventArena,
    MergeScratch,
};
use powergear_repro::activity::sa::{merge_events, sa_ar, sa_ar_values};
use powergear_repro::activity::{activation_rate, switching_activity};

/// Builds a cycle-sorted event sequence from per-event deltas and values.
fn events_from(deltas: &[u32], values: &[u32], start: u64) -> Vec<(u64, u32)> {
    let mut c = start;
    deltas
        .iter()
        .zip(values)
        .map(|(&d, &v)| {
            c += d as u64;
            (c, v)
        })
        .collect()
}

/// Value strategy mixing incompressible noise with RLE-friendly repeats:
/// masked positions collapse onto a 3-value alphabet, so random traces
/// exercise const runs, verbatim runs and the transitions between them.
fn arb_values(len: usize) -> impl Strategy<Value = Vec<u32>> {
    (
        prop::collection::vec(any::<u32>(), len),
        prop::collection::vec(any::<bool>(), len),
    )
        .prop_map(|(raw, mask)| {
            raw.iter()
                .zip(&mask)
                .map(|(&v, &m)| if m { v % 3 } else { v })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on any sorted event sequence.
    #[test]
    fn roundtrip_is_exact(
        deltas in prop::collection::vec(0u32..9, 1..120),
        raw_values in prop::collection::vec(any::<u32>(), 120),
        rep_values in prop::collection::vec(0u32..3, 120),
        start in 0u64..1_000_000,
        repetitive in any::<bool>(),
    ) {
        let values = if repetitive { &rep_values } else { &raw_values };
        let ev = events_from(&deltas, &values[..deltas.len()], start);
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        prop_assert_eq!(arena.decode(r), ev.clone());
        prop_assert_eq!(arena.count(r), ev.len());
    }

    /// The affine fast path (known cycle progression) decodes to exactly
    /// the events the interpreter would have pushed one by one.
    #[test]
    fn affine_encode_matches_naive(
        values in arb_values(90),
        n in 1usize..90,
        start in 0u64..100_000,
        stride in 1u32..50,
    ) {
        let mut out = Vec::new();
        let r = encode_affine(&mut out, start, stride, &values[..n]);
        let stream = &out[r.off as usize..(r.off + r.len) as usize];
        let expect: Vec<(u64, u32)> = values[..n]
            .iter()
            .enumerate()
            .map(|(i, &v)| (start + i as u64 * stride as u64, v))
            .collect();
        prop_assert_eq!(decode(stream), expect);
        prop_assert_eq!(event_count(stream), n);
    }

    /// Streaming folds over compressed runs are bit-identical to the
    /// naive slice math, and so is the raw-column fold.
    #[test]
    fn fold_parity_is_bitwise(
        deltas in prop::collection::vec(0u32..6, 2..100),
        values in arb_values(100),
        latency in 1u64..500,
    ) {
        let ev = events_from(&deltas, &values[..deltas.len()], 3);
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        let (sa_c, ar_c) = arena.sa_ar(r, latency);
        let (sa_n, ar_n) = sa_ar(&ev, latency);
        prop_assert_eq!(sa_c.to_bits(), sa_n.to_bits());
        prop_assert_eq!(ar_c.to_bits(), ar_n.to_bits());
        prop_assert_eq!(sa_c.to_bits(), switching_activity(&ev, latency).to_bits());
        prop_assert_eq!(ar_c.to_bits(), activation_rate(&ev, latency).to_bits());
        // The interpreter's pre-encode column fold agrees too.
        let cols: Vec<u32> = ev.iter().map(|e| e.1).collect();
        let (sa_v, ar_v) = sa_ar_values(&cols, latency);
        prop_assert_eq!(sa_v.to_bits(), sa_n.to_bits());
        prop_assert_eq!(ar_v.to_bits(), ar_n.to_bits());
    }

    /// Two-stream merges decode to exactly `merge_events`, and their folds
    /// stay bit-identical to folding the naive merge.
    #[test]
    fn merge_parity_two_streams(
        da in prop::collection::vec(0u32..7, 1..60),
        db in prop::collection::vec(0u32..7, 1..60),
        va in arb_values(60),
        vb in arb_values(60),
        start_a in 0u64..64,
        start_b in 0u64..64,
        latency in 1u64..400,
    ) {
        let a = events_from(&da, &va[..da.len()], start_a);
        let b = events_from(&db, &vb[..db.len()], start_b);
        let mut arena = EventArena::new();
        let ra = arena.push_events(&a);
        let rb = arena.push_events(&b);
        let mut out = Vec::new();
        let rm = merge_encoded(
            &mut out,
            arena.stream(ra),
            arena.stream(rb),
            &mut MergeScratch::default(),
        );
        let stream = &out[rm.off as usize..(rm.off + rm.len) as usize];
        let naive = merge_events(&a, &b);
        prop_assert_eq!(decode(stream), naive.clone());
        let (sa_c, ar_c) = fold_sa_ar(stream, latency);
        let (sa_n, ar_n) = sa_ar(&naive, latency);
        prop_assert_eq!(sa_c.to_bits(), sa_n.to_bits());
        prop_assert_eq!(ar_c.to_bits(), ar_n.to_bits());
    }

    /// K-way merges (aligned lanes, disjoint blocks, and irregular mixes)
    /// decode to the left fold of pairwise `merge_events` — the exact
    /// semantics `fuse_parallel_edges` replaced.
    #[test]
    fn merge_parity_k_way(
        k in 2usize..6,
        lane_values in prop::collection::vec(arb_values(40), 6),
        count in 2usize..40,
        stride in 2u32..40,
        phases in prop::collection::vec(0u32..200, 6),
        block_gap in prop::sample::select(vec![0u64, 1, 100_000]),
    ) {
        // Lane j is an affine stream; phases may align (same block) or
        // spread lanes into disjoint windows (different blocks).
        let lanes: Vec<Vec<(u64, u32)>> = (0..k)
            .map(|j| {
                let base = phases[j] as u64 + j as u64 * block_gap;
                (0..count)
                    .map(|i| (base + i as u64 * stride as u64, lane_values[j][i]))
                    .collect()
            })
            .collect();
        let mut arena = EventArena::new();
        let refs: Vec<_> = lanes.iter().map(|l| arena.push_events(l)).collect();
        let inputs: Vec<&[u32]> = refs.iter().map(|&r| arena.stream(r)).collect();
        let mut out = Vec::new();
        let rm = merge_streams_k(&mut out, &inputs);
        let stream = &out[rm.off as usize..(rm.off + rm.len) as usize];
        // Naive left fold, as the old pairwise fuse computed it.
        let mut naive = lanes[0].clone();
        for lane in &lanes[1..] {
            naive = merge_events(&naive, lane);
        }
        prop_assert_eq!(decode(stream), naive);
    }

    /// Eq. 2/3 invariants on compressed folds: every change toggles
    /// between 1 and 32 bits, so `AR <= SA <= 32·AR`; constant streams
    /// fold to exactly zero.
    #[test]
    fn sa_ar_invariants(
        deltas in prop::collection::vec(1u32..5, 2..80),
        values in arb_values(80),
        constant in any::<u32>(),
        latency in 1u64..300,
    ) {
        let ev = events_from(&deltas, &values[..deltas.len()], 0);
        let mut arena = EventArena::new();
        let r = arena.push_events(&ev);
        let (sa, ar) = arena.sa_ar(r, latency);
        prop_assert!(sa >= ar - 1e-12, "SA {sa} < AR {ar}");
        prop_assert!(sa <= 32.0 * ar + 1e-12, "SA {sa} > 32*AR {ar}");
        prop_assert!(sa >= 0.0 && ar >= 0.0);

        let const_ev: Vec<(u64, u32)> = (0..deltas.len() as u64).map(|c| (c, constant)).collect();
        let rc = arena.push_events(&const_ev);
        prop_assert_eq!(arena.sa_ar(rc, latency), (0.0, 0.0));
        // and the constant stream compresses to a single run
        prop_assert!(rc.len <= 5, "constant stream must collapse to one run");
    }
}
