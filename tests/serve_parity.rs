//! Property test for the serving layer: [`InferenceEngine`] output must be
//! **bit-identical** to the sequential prediction path for arbitrary batch
//! sizes and thread counts (including 1), both against one full-slice
//! `Ensemble::predict` call and against per-graph calls.

use proptest::prelude::*;

use powergear_repro::gnn::{Ensemble, InferenceEngine, ModelConfig, PowerModel, ServeConfig};
use powergear_repro::graphcon::{PowerGraph, Relation};
use powergear_repro::util::Rng64;

/// A deterministic random valid graph (10-wide metadata, mixed relations).
fn synth_graph(seed: u64) -> PowerGraph {
    let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9) ^ 0x5eed);
    let nodes = 3 + rng.below(7);
    let f = PowerGraph::NODE_FEATS;
    let mut node_feats = vec![0.0f32; nodes * f];
    for n in 0..nodes {
        node_feats[n * f + rng.below(5)] = 1.0;
        node_feats[n * f + 28 + rng.below(6)] = rng.f32();
    }
    let mut edges = Vec::new();
    let mut edge_feats = Vec::new();
    let mut edge_rel = Vec::new();
    for d in 1..nodes as u32 {
        edges.push((rng.below(d as usize) as u32, d));
        edge_feats.push([rng.f32(), rng.f32(), rng.f32() * 0.5, rng.f32() * 0.5]);
        edge_rel.push(match rng.below(4) {
            0 => Relation::AA,
            1 => Relation::AN,
            2 => Relation::NA,
            _ => Relation::NN,
        });
    }
    PowerGraph {
        kernel: "parity".into(),
        design_id: format!("p{seed}"),
        num_nodes: nodes,
        node_feats,
        edges,
        edge_feats,
        edge_rel,
        meta: (0..10).map(|_| rng.f32()).collect(),
    }
}

fn synth_ensemble(members: usize, seed: u64) -> Ensemble {
    Ensemble {
        models: (0..members)
            .map(|i| {
                let mut m = PowerModel::new(ModelConfig::hec(12), seed.wrapping_add(i as u64));
                m.target_scale = 0.2 + 0.15 * i as f32;
                m
            })
            .collect(),
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine output == sequential full-slice output == per-graph output,
    /// bit for bit, for any (graph count, batch size, thread count).
    #[test]
    fn engine_is_bit_identical_to_sequential(
        n_graphs in 1usize..18,
        batch_size in 1usize..24,
        threads in 1usize..5,
        members in 1usize..4,
        seed in 0u64..500,
    ) {
        let graphs: Vec<PowerGraph> =
            (0..n_graphs).map(|i| synth_graph(seed * 100 + i as u64)).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ensemble = synth_ensemble(members, seed);

        let sequential = ensemble.predict(&refs);
        prop_assert_eq!(sequential.len(), n_graphs);

        let engine =
            InferenceEngine::with_config(&ensemble, ServeConfig::new(batch_size, threads));
        let batched = engine.predict(&refs);
        prop_assert_eq!(
            bits(&sequential),
            bits(&batched),
            "full-slice divergence at n={} bs={} t={}", n_graphs, batch_size, threads
        );

        let per_graph: Vec<f64> = refs.iter().map(|g| ensemble.predict(&[*g])[0]).collect();
        prop_assert_eq!(
            bits(&per_graph),
            bits(&batched),
            "per-graph divergence at n={} bs={} t={}", n_graphs, batch_size, threads
        );
    }

    /// Serving twice with different configurations is self-consistent:
    /// the engine is a pure function of its inputs.
    #[test]
    fn engine_is_deterministic_across_configs(
        n_graphs in 1usize..12,
        seed in 0u64..200,
    ) {
        let graphs: Vec<PowerGraph> =
            (0..n_graphs).map(|i| synth_graph(seed * 31 + i as u64)).collect();
        let refs: Vec<&PowerGraph> = graphs.iter().collect();
        let ensemble = synth_ensemble(2, seed);
        let a = InferenceEngine::with_config(&ensemble, ServeConfig::new(1, 4)).predict(&refs);
        let b = InferenceEngine::with_config(&ensemble, ServeConfig::new(64, 1)).predict(&refs);
        prop_assert_eq!(bits(&a), bits(&b));
    }
}
