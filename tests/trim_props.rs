//! Property tests for the graph-trimming pass (`pg_graphcon::trim`) over
//! randomly generated DFGs.
//!
//! The single-pass trim rewrite must preserve the pass's contract for any
//! graph, not just the ones the pipeline happens to build today:
//!
//! * **idempotence** — a second trim changes nothing;
//! * **completeness** — no trimmable node survives;
//! * **reachability preservation** — two surviving nodes are connected
//!   after trimming iff they were connected before (bypass bridges every
//!   cast/control chain, and never invents new dataflow);
//! * **annotation preservation** — surviving nodes keep their activity
//!   statistics, BRAM/array annotations and op lists bit-for-bit.

use proptest::prelude::*;

use powergear_repro::activity::NodeActivity;
use powergear_repro::graphcon::{trim::trim, NodeKind, WorkEdge, WorkGraph, WorkNode};
use powergear_repro::ir::Opcode;

/// Mix of trimmable (casts/branches) and persistent opcodes.
const OPCODES: [Opcode; 10] = [
    Opcode::SExt,
    Opcode::ZExt,
    Opcode::Trunc,
    Opcode::BitCast,
    Opcode::Br,
    Opcode::FAdd,
    Opcode::FMul,
    Opcode::Load,
    Opcode::Store,
    Opcode::Phi,
];

const NODES: usize = 10;
const PAIRS: usize = NODES * (NODES - 1) / 2;

/// Builds a random DAG: node kinds from `OPCODES`, edges over the
/// upper-triangular pair mask (so src < dst), random sorted event streams.
fn build_graph(kinds: Vec<usize>, edge_mask: Vec<bool>, seeds: Vec<u32>) -> WorkGraph {
    let mut g = WorkGraph {
        latency: 40,
        ..WorkGraph::default()
    };
    for (i, k) in kinds.iter().enumerate() {
        g.add_node(WorkNode {
            kind: NodeKind::Op(OPCODES[k % OPCODES.len()]),
            ops: vec![],
            activity: NodeActivity {
                ar: (i as f64) / 16.0,
                sa_in: (*k as f64) / 8.0,
                sa_out: 0.25,
                sa_overall: (i + k) as f64 / 20.0,
            },
            bram: 0.0,
            array: None,
            bank: 0,
            alive: true,
        });
    }
    let mut pair = 0usize;
    for src in 0..NODES {
        for dst in (src + 1)..NODES {
            if edge_mask[pair] {
                let s = seeds[pair] as u64;
                let ev: Vec<(u64, u32)> = (0..(s % 3 + 1))
                    .map(|j| (s % 17 + j, (seeds[pair].wrapping_mul(j as u32 + 1)) ^ 0xA5))
                    .collect();
                let ev_ref = g.add_events(&ev);
                g.add_edge(WorkEdge {
                    src,
                    dst,
                    src_ev: ev_ref,
                    snk_ev: ev_ref,
                    alive: true,
                });
            }
            pair += 1;
        }
    }
    g
}

fn is_trimmable_node(n: &WorkNode) -> bool {
    matches!(&n.kind, NodeKind::Op(o) if o.is_trimmable())
}

/// All-pairs reachability (directed, over alive nodes/edges), restricted
/// to the given node set.
fn reachability(g: &WorkGraph) -> Vec<Vec<bool>> {
    let n = g.nodes.len();
    let mut reach = vec![vec![false; n]; n];
    for e in g.edges.iter().filter(|e| e.alive) {
        if g.nodes[e.src].alive && g.nodes[e.dst].alive {
            reach[e.src][e.dst] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    reach
}

/// Canonical snapshot of alive topology: alive node set + sorted alive
/// edge multiset with event counts.
fn snapshot(g: &WorkGraph) -> (Vec<bool>, Vec<(usize, usize, usize, usize)>) {
    let nodes: Vec<bool> = g.nodes.iter().map(|n| n.alive).collect();
    let mut edges: Vec<(usize, usize, usize, usize)> = g
        .edges
        .iter()
        .filter(|e| e.alive)
        .map(|e| {
            (
                e.src,
                e.dst,
                g.events.count(e.src_ev),
                g.events.count(e.snk_ev),
            )
        })
        .collect();
    edges.sort_unstable();
    (nodes, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trim_invariants(
        kinds in prop::collection::vec(0usize..OPCODES.len(), NODES),
        edge_mask in prop::collection::vec(any::<bool>(), PAIRS),
        seeds in prop::collection::vec(any::<u32>(), PAIRS),
    ) {
        let mut g = build_graph(kinds, edge_mask, seeds);
        let before_reach = reachability(&g);
        let before_nodes: Vec<WorkNode> = g.nodes.clone();

        trim(&mut g);
        prop_assert_eq!(g.check(), Ok(()));

        // Completeness: no trimmable node survives.
        prop_assert!(
            !g.nodes.iter().any(|n| n.alive && is_trimmable_node(n)),
            "trimmable node survived"
        );

        // Reachability among surviving nodes is exactly preserved.
        let after_reach = reachability(&g);
        for a in 0..g.nodes.len() {
            for b in 0..g.nodes.len() {
                if g.nodes[a].alive && g.nodes[b].alive {
                    prop_assert_eq!(
                        before_reach[a][b], after_reach[a][b],
                        "reachability {} -> {} changed (before {}, after {})",
                        a, b, before_reach[a][b], after_reach[a][b]
                    );
                }
            }
        }

        // Annotations of surviving nodes are untouched, and only trimmable
        // nodes were retired.
        for (i, n) in g.nodes.iter().enumerate() {
            if n.alive {
                prop_assert_eq!(n, &before_nodes[i], "node {} annotation changed", i);
            } else {
                prop_assert!(
                    is_trimmable_node(&before_nodes[i]),
                    "non-trimmable node {} was dropped",
                    i
                );
            }
        }

        // Idempotence: a second trim is a no-op on the alive topology.
        let snap = snapshot(&g);
        trim(&mut g);
        prop_assert_eq!(snapshot(&g), snap);
    }
}
