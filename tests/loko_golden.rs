//! Golden-eval regression harness for the leave-one-kernel-out harness
//! (`powergear::eval`).
//!
//! A checked-in fixture (`tests/golden/loko_mape.tsv`) pins the **full
//! TSV table** — per-kernel MAPE/RMSE for both power targets plus the
//! trailing digest — of a reduced LOKO run. Any change to dataset
//! construction, training, batching, or the harness itself that moves a
//! single bit of any metric fails here; the companion thread-parity test
//! pins the house invariant that the table is identical at 1, 2 and 4
//! training threads.
//!
//! Regenerating (only legitimate after an *intentional* semantic change):
//!
//! ```text
//! PG_GOLDEN_REGEN=1 cargo test --test loko_golden
//! ```

use powergear_repro::datasets::{build_all, KERNEL_NAMES};
use powergear_repro::gnn::ModelConfig;
use powergear_repro::powergear::eval::{run_loko, target_name, EvalConfig};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/loko_mape.tsv");

/// Reduced configuration: three kernels with distinct loop structures,
/// tiny model, few epochs — big enough to exercise the full train/eval
/// path, small enough for CI.
fn tiny_config() -> EvalConfig {
    let mut cfg = EvalConfig::quick(ModelConfig::hec(8));
    cfg.data.max_samples = 6;
    cfg.epochs = 2;
    cfg.kernels = Some(vec!["atax".into(), "mvt".into(), "bicg".into()]);
    cfg
}

#[test]
fn loko_table_matches_golden_fixture() {
    let cfg = tiny_config();
    let datasets = build_all(&cfg.data);
    let tsv = run_loko(&datasets, &cfg).to_tsv();
    if std::env::var_os("PG_GOLDEN_REGEN").is_some() {
        std::fs::write(FIXTURE, &tsv).expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("missing fixture {FIXTURE} ({e}); regenerate with PG_GOLDEN_REGEN=1")
    });
    assert_eq!(
        tsv, golden,
        "LOKO table drifted from the golden fixture; if the change is an \
         intentional semantic change, regenerate with PG_GOLDEN_REGEN=1"
    );
}

#[test]
fn loko_table_is_bit_identical_across_thread_counts() {
    let mut tables: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut cfg = tiny_config();
        cfg.threads = threads;
        cfg.data.threads = threads;
        let datasets = build_all(&cfg.data);
        tables.push((threads, run_loko(&datasets, &cfg).to_tsv()));
    }
    let (_, base) = &tables[0];
    for (threads, tsv) in &tables[1..] {
        assert_eq!(
            tsv, base,
            "LOKO table at {threads} threads differs from 1 thread"
        );
    }
}

/// Paper-scale protocol: every one of the nine polybench kernels is held
/// out once, for both power targets. Too slow for the default suite; the
/// CI dataset-scale job runs it with `-- --ignored`.
#[test]
#[ignore = "paper-scale: all nine kernels; run with -- --ignored"]
fn loko_covers_all_nine_kernels() {
    let cfg = EvalConfig::quick(ModelConfig::hec(8));
    let datasets = build_all(&cfg.data);
    let report = run_loko(&datasets, &cfg);
    assert_eq!(report.rows.len(), KERNEL_NAMES.len() * 2);
    for name in KERNEL_NAMES {
        for target in ["total", "dynamic"] {
            let row = report
                .rows
                .iter()
                .find(|r| r.kernel == *name && target_name_of(r) == target)
                .unwrap_or_else(|| panic!("missing row for {name}/{target}"));
            assert!(row.n_test > 0, "{name}: empty test set");
            assert!(
                row.mape_pct.is_finite() && row.mape_pct >= 0.0,
                "{name}/{target}: bad MAPE {}",
                row.mape_pct
            );
            assert!(
                row.rmse_w.is_finite() && row.rmse_w >= 0.0,
                "{name}/{target}: bad RMSE {}",
                row.rmse_w
            );
        }
    }
}

fn target_name_of(row: &powergear_repro::powergear::eval::KernelEval) -> &'static str {
    target_name(row.target)
}
