//! Property tests for the leave-one-kernel-out splits
//! (`pg_datasets::splits`) over randomly generated datasets.
//!
//! The LOKO evaluation harness leans on these invariants for any dataset
//! shape, not just the nine polybench kernels the pipeline builds today:
//!
//! * **partition** — `train`/`test` are disjoint and together cover every
//!   sample of the source datasets exactly once;
//! * **no leakage** — nothing from the held-out kernel ever reaches
//!   `train_labeled`, for either power target;
//! * **label fidelity** — the labeled views carry exactly the source
//!   samples' labels, in source order, for both targets;
//! * **coverage** — `all_splits` holds out every kernel exactly once, in
//!   dataset order.

use proptest::prelude::*;

use powergear_repro::datasets::{
    all_splits, leave_one_out, KernelDataset, PowerTarget, Sample,
};
use powergear_repro::graphcon::PowerGraph;
use powergear_repro::hls::{Directives, HlsReport};
use powergear_repro::powersim::PowerBreakdown;

/// A synthetic sample: only the fields the split logic looks at carry
/// signal (kernel name, per-target labels, a distinguishable graph).
fn sample(kernel: &str, id: usize, total: f64, dyn_frac: f64) -> Sample {
    let design_id = format!("{kernel}-d{id}");
    let dynamic = total * dyn_frac;
    Sample {
        kernel: kernel.to_string(),
        design_id: design_id.clone(),
        directives: Directives::new(),
        graph: PowerGraph {
            kernel: kernel.to_string(),
            design_id,
            ..PowerGraph::default()
        },
        power: PowerBreakdown {
            total,
            dynamic,
            static_: total - dynamic,
            nets: 0.0,
            internal: 0.0,
            clock: 0.0,
        },
        latency: 100 + id as u64,
        report: HlsReport {
            lut: 1,
            ff: 1,
            dsp: 0,
            bram: 0,
            latency_cycles: 100 + id as u64,
            clock_ns: 10.0,
        },
    }
}

fn datasets_from(labels: &[Vec<(f64, f64)>]) -> Vec<KernelDataset> {
    labels
        .iter()
        .enumerate()
        .map(|(ki, samples)| {
            let kernel = format!("k{ki}");
            KernelDataset {
                kernel: kernel.clone(),
                size: 8,
                samples: samples
                    .iter()
                    .enumerate()
                    .map(|(si, &(total, frac))| sample(&kernel, si, total, frac))
                    .collect(),
                baseline: HlsReport {
                    lut: 1,
                    ff: 1,
                    dsp: 0,
                    bram: 0,
                    latency_cycles: 100,
                    clock_ns: 10.0,
                },
            }
        })
        .collect()
}

/// 2–6 kernels, each with 1–6 samples of (total power, dynamic fraction).
fn labels_strategy() -> impl Strategy<Value = Vec<Vec<(f64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0.5f64..20.0, 0.05f64..0.95), 1..6),
        2..6,
    )
}

proptest! {
    #[test]
    fn split_is_a_disjoint_exhaustive_partition(labels in labels_strategy()) {
        let datasets = datasets_from(&labels);
        let all_ids: Vec<String> = datasets
            .iter()
            .flat_map(|d| d.samples.iter().map(|s| s.design_id.clone()))
            .collect();
        for held in datasets.iter().map(|d| d.kernel.clone()) {
            let split = leave_one_out(&datasets, &held);
            prop_assert_eq!(&split.test_kernel, &held);
            prop_assert!(split.test.iter().all(|s| s.kernel == held));
            prop_assert!(split.train.iter().all(|s| s.kernel != held));
            // Together they are exactly the source samples, each once.
            let mut seen: Vec<String> = split
                .train
                .iter()
                .chain(split.test.iter())
                .map(|s| s.design_id.clone())
                .collect();
            let mut want = all_ids.clone();
            seen.sort();
            want.sort();
            prop_assert_eq!(seen, want);
        }
    }

    #[test]
    fn held_out_kernel_never_leaks_into_training(labels in labels_strategy()) {
        let datasets = datasets_from(&labels);
        for held in datasets.iter().map(|d| d.kernel.clone()) {
            let split = leave_one_out(&datasets, &held);
            for target in [PowerTarget::Total, PowerTarget::Dynamic] {
                for (graph, _) in split.train_labeled(target) {
                    prop_assert_ne!(&graph.kernel, &held);
                }
            }
        }
    }

    #[test]
    fn labeled_views_match_source_labels_per_target(labels in labels_strategy()) {
        let datasets = datasets_from(&labels);
        for held in datasets.iter().map(|d| d.kernel.clone()) {
            let split = leave_one_out(&datasets, &held);
            for target in [PowerTarget::Total, PowerTarget::Dynamic] {
                let train = split.train_labeled(target);
                let test = split.test_labeled(target);
                prop_assert_eq!(train.len(), split.train.len());
                prop_assert_eq!(test.len(), split.test.len());
                // Labels in source order, bit-for-bit.
                for (s, (g, y)) in split.test.iter().zip(&test) {
                    prop_assert_eq!(&s.graph, *g);
                    prop_assert_eq!(s.label(target).to_bits(), y.to_bits());
                }
                for (s, (_, y)) in split.train.iter().zip(&train) {
                    prop_assert_eq!(s.label(target).to_bits(), y.to_bits());
                }
                // Counts per kernel match the source datasets.
                let held_n = datasets
                    .iter()
                    .find(|d| d.kernel == held)
                    .unwrap()
                    .samples
                    .len();
                let rest_n: usize = datasets
                    .iter()
                    .filter(|d| d.kernel != held)
                    .map(|d| d.samples.len())
                    .sum();
                prop_assert_eq!(test.len(), held_n);
                prop_assert_eq!(train.len(), rest_n);
            }
        }
    }

    #[test]
    fn all_splits_hold_out_every_kernel_exactly_once(labels in labels_strategy()) {
        let datasets = datasets_from(&labels);
        let splits = all_splits(&datasets);
        prop_assert_eq!(splits.len(), datasets.len());
        for (ds, split) in datasets.iter().zip(&splits) {
            prop_assert_eq!(&split.test_kernel, &ds.kernel);
            prop_assert_eq!(split.test.len(), ds.samples.len());
        }
    }
}
