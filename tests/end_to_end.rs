//! Cross-crate integration tests: the full PowerGear pipeline from kernel
//! source to power prediction.

use powergear_repro::activity::{execute, Stimuli};
use powergear_repro::datasets::{
    build_kernel_dataset, leave_one_out, polybench, DatasetConfig, PowerTarget,
};
use powergear_repro::graphcon::GraphFlow;
use powergear_repro::hls::{Directives, HlsFlow};
use powergear_repro::powergear::{PowerGear, PowerGearConfig};
use powergear_repro::powersim::{BoardOracle, VivadoEstimator};

fn tiny_cfg() -> DatasetConfig {
    DatasetConfig {
        size: 6,
        max_samples: 12,
        seed: 1,
        threads: 1,
    }
}

#[test]
fn kernel_to_graph_to_label() {
    let kernel = polybench::gesummv(6);
    let mut d = Directives::new();
    d.pipeline("j").unroll("j", 2).partition("A", 2);
    let design = HlsFlow::new().run(&kernel, &d).expect("synthesis");
    let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
    let graph = GraphFlow::new().build(&design, &trace);
    assert!(graph.validate().is_ok());
    assert!(graph.num_nodes > 10);
    assert!(graph.num_edges() > graph.num_nodes / 2);
    let power = BoardOracle::default().measure(&design, &trace);
    assert!(power.dynamic > 0.0 && power.dynamic < 2.0);
    assert!(power.static_ > 0.2 && power.static_ < 1.0);
}

#[test]
fn all_nine_kernels_flow_end_to_end() {
    for kernel in polybench::polybench(6) {
        let design = HlsFlow::new()
            .run(&kernel, &Directives::new())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
        let graph = GraphFlow::new().build(&design, &trace);
        assert!(graph.validate().is_ok(), "{} graph invalid", kernel.name);
        let power = BoardOracle::default().measure(&design, &trace);
        assert!(power.total > power.dynamic, "{}", kernel.name);
    }
}

#[test]
fn fit_predict_and_transfer() {
    let datasets = vec![
        build_kernel_dataset(&polybench::mvt(6), &tiny_cfg()),
        build_kernel_dataset(&polybench::bicg(6), &tiny_cfg()),
        build_kernel_dataset(&polybench::atax(6), &tiny_cfg()),
    ];
    let cfg = PowerGearConfig {
        hidden: 12,
        epochs: 10,
        folds: 2,
        seeds: vec![3],
        batch_size: 16,
        lr: 3e-3,
        threads: 1,
    };
    let model = PowerGear::fit(&datasets, &cfg);
    // transfer to a kernel family member with unseen directives
    let kernel = polybench::mvt(6);
    let mut d = Directives::new();
    d.pipeline("j2").unroll("j2", 3);
    let est = model.estimate(&kernel, &d).expect("estimate");
    assert!(est.total_w.is_finite() && est.total_w > 0.0);
    assert!(est.dynamic_w.is_finite() && est.dynamic_w > 0.0);
}

#[test]
fn leave_one_out_protocol() {
    let datasets = vec![
        build_kernel_dataset(&polybench::mvt(6), &tiny_cfg()),
        build_kernel_dataset(&polybench::bicg(6), &tiny_cfg()),
    ];
    let split = leave_one_out(&datasets, "bicg");
    assert!(split.train.iter().all(|s| s.kernel == "mvt"));
    assert!(split.test.iter().all(|s| s.kernel == "bicg"));
    let train = split.train_labeled(PowerTarget::Dynamic);
    let test = split.test_labeled(PowerTarget::Dynamic);
    assert!(!train.is_empty() && !test.is_empty());
}

#[test]
fn deterministic_pipeline() {
    let kernel = polybench::syrk(6);
    let run = || {
        let mut d = Directives::new();
        d.pipeline("k").partition("A", 2);
        let design = HlsFlow::new().run(&kernel, &d).unwrap();
        let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
        let graph = GraphFlow::new().build(&design, &trace);
        let power = BoardOracle::default().measure(&design, &trace);
        (graph, power)
    };
    let (g1, p1) = run();
    let (g2, p2) = run();
    assert_eq!(g1, g2);
    assert_eq!(p1, p2);
}

#[test]
fn vivado_surrogate_miscalibration_story() {
    // the paper's observation: the estimator ignores power gating, so its
    // raw static estimate is far above the measured one
    let kernel = polybench::atax(6);
    let design = HlsFlow::new().run(&kernel, &Directives::new()).unwrap();
    let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
    let truth = BoardOracle::default().measure(&design, &trace);
    let est = VivadoEstimator::new().estimate_raw(&design);
    assert!(est.static_ > 1.5 * truth.static_);
}

#[test]
fn labels_span_a_design_space() {
    let ds = build_kernel_dataset(&polybench::gemm(6), &tiny_cfg());
    let dyns: Vec<f64> = ds.samples.iter().map(|s| s.power.dynamic).collect();
    let lo = dyns.iter().cloned().fold(f64::MAX, f64::min);
    let hi = dyns.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        hi / lo > 1.2,
        "design space should spread dynamic power ({lo} .. {hi})"
    );
    // latency/power tradeoff direction: min-latency design uses more power
    // than the min-power design
    let fastest = ds
        .samples
        .iter()
        .min_by_key(|s| s.latency)
        .expect("non-empty");
    let frugal = ds
        .samples
        .iter()
        .min_by(|a, b| a.power.dynamic.partial_cmp(&b.power.dynamic).unwrap())
        .expect("non-empty");
    assert!(fastest.power.dynamic >= frugal.power.dynamic);
    assert!(fastest.latency <= frugal.latency);
}
