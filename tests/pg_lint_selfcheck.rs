//! Self-check: run the pg_lint static analyzer over this live workspace and
//! require zero non-baselined findings. This is the same gate CI's
//! `lint-analyzer` job applies via the `pg-lint` bin; having it in `cargo
//! test` means a determinism or layering regression fails the tier-1 suite
//! locally, before any CI round trip.

use std::path::Path;

use pg_lint::{apply_baseline, parse_baseline, run_workspace, Config};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = Config::house();
    let (findings, files, manifests) = run_workspace(root, &cfg);

    // Sanity: the walk really saw the workspace (14 crates + analyzer +
    // root package sources, 18 manifests incl. vendor shims).
    assert!(files > 80, "only {files} source files scanned");
    assert!(manifests >= 18, "only {manifests} manifests scanned");

    let baseline_text = std::fs::read_to_string(root.join("pg-lint.baseline"))
        .expect("pg-lint.baseline is checked in at the workspace root");
    let baseline = parse_baseline(&baseline_text).expect("baseline parses");

    let mut report = apply_baseline(findings, &baseline);
    report.files_scanned = files;
    report.manifests_scanned = manifests;

    assert!(
        report.is_clean(true),
        "pg-lint found non-baselined findings (or stale baseline entries):\n{}",
        report.render_text(true)
    );
}

/// The baseline may only shrink: it must never absorb errors, only the
/// explicitly grandfathered warning classes.
#[test]
fn baseline_contains_no_error_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline_text = std::fs::read_to_string(root.join("pg-lint.baseline")).unwrap();
    let baseline = parse_baseline(&baseline_text).unwrap();
    const WARNING_RULES: [&str; 4] = [
        "float_cast",
        "float_fold",
        "print_hygiene",
        "allow_no_reason",
    ];
    for e in &baseline {
        assert!(
            WARNING_RULES.contains(&e.rule.as_str()),
            "baseline entry for `{}` ({}) grandfathers an error-severity rule; \
             fix the code instead",
            e.rule,
            e.path
        );
    }
}
