//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use powergear_repro::activity::{activation_rate, execute, switching_activity, Stimuli};
use powergear_repro::dse::{adrs, dominates, pareto_frontier, run_dse, DseConfig, Point};
use powergear_repro::graphcon::GraphFlow;
use powergear_repro::hls::{Directives, FuLibrary, HlsFlow};
use powergear_repro::ir::expr::{aff, Expr};
use powergear_repro::ir::{ArrayKind, Kernel, KernelBuilder, Opcode};
use powergear_repro::tensor::{Matrix, Tape};

/// A small random-but-valid kernel family: `y[i] = y[i] + a[i]*x[i] ...`
/// with parameterized trip count and extra terms.
fn kernel_with(trip: usize, terms: usize) -> Kernel {
    KernelBuilder::new("prop")
        .array("a", &[trip], ArrayKind::Input)
        .array("x", &[trip], ArrayKind::Input)
        .array("y", &[trip], ArrayKind::Output)
        .loop_("i", trip, |b| {
            let mut e = Expr::load("y", vec![aff("i")]);
            for _ in 0..terms {
                e = e + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]);
            }
            b.assign(("y", vec![aff("i")]), e);
        })
        .build()
        .expect("well-formed")
}

fn arb_directives(trip: usize) -> impl Strategy<Value = Directives> {
    (any::<bool>(), 0usize..4, 0usize..4).prop_map(move |(pipe, unroll_pow, part_pow)| {
        let mut d = Directives::new();
        if pipe {
            d.pipeline("i");
        }
        let u = 1 << unroll_pow;
        if u > 1 && u <= trip {
            d.unroll("i", u);
        }
        let p = 1 << part_pow;
        if p > 1 {
            d.partition("a", p).partition("x", p).partition("y", p);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scheduling respects dataflow dependencies and never oversubscribes
    /// memory ports, for any directive combination.
    #[test]
    fn schedule_invariants(trip in prop::sample::select(vec![4usize, 8, 16]),
                           terms in 1usize..3,
                           d in arb_directives(16)) {
        let kernel = kernel_with(trip, terms);
        let d = {
            // clamp unroll to the actual trip
            let mut dd = Directives::new();
            if d.is_pipelined("i") { dd.pipeline("i"); }
            let u = d.unroll_factor("i").min(trip);
            if u > 1 { dd.unroll("i", u); }
            let p = d.partition_factor("a");
            if p > 1 { dd.partition("a", p).partition("x", p).partition("y", p); }
            dd
        };
        let lib = FuLibrary::default();
        let design = HlsFlow::new().run(&kernel, &d).unwrap();
        // dependencies
        for op in &design.ir.ops {
            let start = design.schedule.op_start(&design.ir, op.id);
            for u in op.value_operands() {
                let def = design.ir.op(u);
                if def.block == op.block {
                    let def_done = design.schedule.op_start(&design.ir, u) + lib.latency(def.opcode);
                    prop_assert!(start >= def_done);
                }
            }
        }
        // latency is positive and grows with trip count
        prop_assert!(design.report.latency_cycles as usize >= trip);
    }

    /// The interpreter computes the same final arrays no matter which
    /// directives are applied (hardware transformations preserve function).
    #[test]
    fn directives_preserve_semantics(d in arb_directives(8)) {
        let kernel = kernel_with(8, 1);
        let stim = Stimuli::for_kernel(&kernel, 3);
        let base = HlsFlow::new().run(&kernel, &Directives::new()).unwrap();
        let opt = HlsFlow::new().run(&kernel, &d).unwrap();
        let r0 = execute(&base, &stim);
        let r1 = execute(&opt, &stim);
        prop_assert_eq!(&r0.final_arrays["y"], &r1.final_arrays["y"]);
    }

    /// SA/AR relationships from Eq. 2/3: AR <= SA <= 32*AR for 32-bit
    /// sequences, both zero for constant sequences.
    #[test]
    fn sa_ar_bounds(values in prop::collection::vec(any::<u32>(), 2..40),
                    latency in 40u64..200) {
        let events: Vec<(u64, u32)> = values.iter().enumerate()
            .map(|(i, &v)| (i as u64, v)).collect();
        let sa = switching_activity(&events, latency);
        let ar = activation_rate(&events, latency);
        prop_assert!(sa >= ar - 1e-12, "SA {sa} < AR {ar}");
        prop_assert!(sa <= 32.0 * ar + 1e-12);
        prop_assert!(ar <= 1.0 + (values.len() as f64 / latency as f64));
    }

    /// The constructed graph is structurally valid for random directive
    /// settings, and trimmable opcodes never survive.
    #[test]
    fn graph_flow_invariants(d in arb_directives(8)) {
        let kernel = kernel_with(8, 2);
        let design = HlsFlow::new().run(&kernel, &d).unwrap();
        let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
        let g = GraphFlow::new().build(&design, &trace);
        prop_assert!(g.validate().is_ok());
        // no trimmable opcode slot is hot in any node's one-hot block
        for n in 0..g.num_nodes {
            let f = g.node(n);
            for op in [Opcode::SExt, Opcode::ZExt, Opcode::Trunc, Opcode::Br] {
                prop_assert_eq!(f[5 + op.index()], 0.0);
            }
        }
    }

    /// Pareto frontier members are mutually non-dominating and cover all
    /// other points; ADRS(Γ, Γ) = 0.
    #[test]
    fn pareto_adrs_properties(raw in prop::collection::vec((1u32..1000, 1u32..1000), 3..60)) {
        let pts: Vec<Point> = raw.iter().enumerate()
            .map(|(i, &(l, p))| Point { id: i, latency: l as f64, power: p as f64 })
            .collect();
        let front = pareto_frontier(&pts);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.id != b.id {
                    prop_assert!(!dominates(a, b));
                }
            }
        }
        for p in &pts {
            let covered = front.iter().any(|f|
                dominates(f, p) || (f.latency == p.latency && f.power == p.power));
            prop_assert!(covered || front.iter().any(|f| f.id == p.id));
        }
        prop_assert!(adrs(&front, &front) < 1e-12);
    }

    /// DSE with the exact oracle as predictor and full budget always
    /// reaches ADRS 0; a partial budget never yields negative ADRS.
    #[test]
    fn dse_budget_properties(raw in prop::collection::vec((1u32..500, 1u32..500), 8..40),
                             seed in 0u64..50) {
        let lat: Vec<f64> = raw.iter().map(|&(l, _)| l as f64).collect();
        let pow: Vec<f64> = raw.iter().map(|&(_, p)| p as f64).collect();
        let full = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(1.0, seed));
        prop_assert!(full.adrs < 1e-12);
        let part = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.3, seed));
        prop_assert!(part.adrs >= 0.0);
        prop_assert!(part.sampled.len() <= full.sampled.len());
    }

    /// Autograd matches finite differences for a random two-layer network.
    #[test]
    fn autograd_matches_finite_difference(
        w_vals in prop::collection::vec(-0.9f32..0.9, 6),
        x_vals in prop::collection::vec(-1.0f32..1.0, 6)
    ) {
        let w = Matrix::from_vec(3, 2, w_vals.clone());
        let x = Matrix::from_vec(2, 3, x_vals.clone());
        let f = |wm: Matrix| -> f32 {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let wv = t.param(0, wm);
            let h = t.matmul(xv, wv);
            let r = t.relu(h);
            let s = t.sum_rows(r);
            let ones = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, ones);
            let loss = t.mse_loss(y, &[0.3]);
            t.value(loss).data[0]
        };
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let wv = t.param(0, w.clone());
        let h = t.matmul(xv, wv);
        let r = t.relu(h);
        let s = t.sum_rows(r);
        let ones = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
        let y = t.matmul(s, ones);
        let loss = t.mse_loss(y, &[0.3]);
        let grads = t.backward(loss);
        let g = grads[0].as_ref().unwrap();
        let eps = 1e-2f32;
        for k in 0..w.len() {
            let mut plus = w.clone();
            plus.data[k] += eps;
            let mut minus = w.clone();
            minus.data[k] -= eps;
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            prop_assert!(
                (g.data[k] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "grad[{}]: {} vs {}", k, g.data[k], numeric
            );
        }
    }
}
