//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use powergear_repro::activity::{activation_rate, execute, switching_activity, Stimuli};
use powergear_repro::dse::{adrs, dominates, pareto_frontier, run_dse, DseConfig, Point};
use powergear_repro::graphcon::GraphFlow;
use powergear_repro::hls::{Directives, FuLibrary, HlsFlow};
use powergear_repro::ir::expr::{aff, Expr};
use powergear_repro::ir::{ArrayKind, Kernel, KernelBuilder, Opcode};
use powergear_repro::tensor::{GradAccum, Matrix, Tape};

/// A small random-but-valid kernel family: `y[i] = y[i] + a[i]*x[i] ...`
/// with parameterized trip count and extra terms.
fn kernel_with(trip: usize, terms: usize) -> Kernel {
    KernelBuilder::new("prop")
        .array("a", &[trip], ArrayKind::Input)
        .array("x", &[trip], ArrayKind::Input)
        .array("y", &[trip], ArrayKind::Output)
        .loop_("i", trip, |b| {
            let mut e = Expr::load("y", vec![aff("i")]);
            for _ in 0..terms {
                e = e + Expr::load("a", vec![aff("i")]) * Expr::load("x", vec![aff("i")]);
            }
            b.assign(("y", vec![aff("i")]), e);
        })
        .build()
        .expect("well-formed")
}

fn arb_directives(trip: usize) -> impl Strategy<Value = Directives> {
    (any::<bool>(), 0usize..4, 0usize..4).prop_map(move |(pipe, unroll_pow, part_pow)| {
        let mut d = Directives::new();
        if pipe {
            d.pipeline("i");
        }
        let u = 1 << unroll_pow;
        if u > 1 && u <= trip {
            d.unroll("i", u);
        }
        let p = 1 << part_pow;
        if p > 1 {
            d.partition("a", p).partition("x", p).partition("y", p);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scheduling respects dataflow dependencies and never oversubscribes
    /// memory ports, for any directive combination.
    #[test]
    fn schedule_invariants(trip in prop::sample::select(vec![4usize, 8, 16]),
                           terms in 1usize..3,
                           d in arb_directives(16)) {
        let kernel = kernel_with(trip, terms);
        let d = {
            // clamp unroll to the actual trip
            let mut dd = Directives::new();
            if d.is_pipelined("i") { dd.pipeline("i"); }
            let u = d.unroll_factor("i").min(trip);
            if u > 1 { dd.unroll("i", u); }
            let p = d.partition_factor("a");
            if p > 1 { dd.partition("a", p).partition("x", p).partition("y", p); }
            dd
        };
        let lib = FuLibrary::default();
        let design = HlsFlow::new().run(&kernel, &d).unwrap();
        // dependencies
        for op in &design.ir.ops {
            let start = design.schedule.op_start(&design.ir, op.id);
            for u in op.value_operands() {
                let def = design.ir.op(u);
                if def.block == op.block {
                    let def_done = design.schedule.op_start(&design.ir, u) + lib.latency(def.opcode);
                    prop_assert!(start >= def_done);
                }
            }
        }
        // latency is positive and grows with trip count
        prop_assert!(design.report.latency_cycles as usize >= trip);
    }

    /// The interpreter computes the same final arrays no matter which
    /// directives are applied (hardware transformations preserve function).
    #[test]
    fn directives_preserve_semantics(d in arb_directives(8)) {
        let kernel = kernel_with(8, 1);
        let stim = Stimuli::for_kernel(&kernel, 3);
        let base = HlsFlow::new().run(&kernel, &Directives::new()).unwrap();
        let opt = HlsFlow::new().run(&kernel, &d).unwrap();
        let r0 = execute(&base, &stim);
        let r1 = execute(&opt, &stim);
        prop_assert_eq!(&r0.final_arrays["y"], &r1.final_arrays["y"]);
    }

    /// SA/AR relationships from Eq. 2/3: AR <= SA <= 32*AR for 32-bit
    /// sequences, both zero for constant sequences.
    #[test]
    fn sa_ar_bounds(values in prop::collection::vec(any::<u32>(), 2..40),
                    latency in 40u64..200) {
        let events: Vec<(u64, u32)> = values.iter().enumerate()
            .map(|(i, &v)| (i as u64, v)).collect();
        let sa = switching_activity(&events, latency);
        let ar = activation_rate(&events, latency);
        prop_assert!(sa >= ar - 1e-12, "SA {sa} < AR {ar}");
        prop_assert!(sa <= 32.0 * ar + 1e-12);
        prop_assert!(ar <= 1.0 + (values.len() as f64 / latency as f64));
    }

    /// The constructed graph is structurally valid for random directive
    /// settings, and trimmable opcodes never survive.
    #[test]
    fn graph_flow_invariants(d in arb_directives(8)) {
        let kernel = kernel_with(8, 2);
        let design = HlsFlow::new().run(&kernel, &d).unwrap();
        let trace = execute(&design, &Stimuli::for_kernel(&kernel, 0));
        let g = GraphFlow::new().build(&design, &trace);
        prop_assert!(g.validate().is_ok());
        // no trimmable opcode slot is hot in any node's one-hot block
        for n in 0..g.num_nodes {
            let f = g.node(n);
            for op in [Opcode::SExt, Opcode::ZExt, Opcode::Trunc, Opcode::Br] {
                prop_assert_eq!(f[5 + op.index()], 0.0);
            }
        }
    }

    /// Pareto frontier members are mutually non-dominating and cover all
    /// other points; ADRS(Γ, Γ) = 0.
    #[test]
    fn pareto_adrs_properties(raw in prop::collection::vec((1u32..1000, 1u32..1000), 3..60)) {
        let pts: Vec<Point> = raw.iter().enumerate()
            .map(|(i, &(l, p))| Point { id: i, latency: l as f64, power: p as f64 })
            .collect();
        let front = pareto_frontier(&pts);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                if a.id != b.id {
                    prop_assert!(!dominates(a, b));
                }
            }
        }
        for p in &pts {
            let covered = front.iter().any(|f|
                dominates(f, p) || (f.latency == p.latency && f.power == p.power));
            prop_assert!(covered || front.iter().any(|f| f.id == p.id));
        }
        prop_assert!(adrs(&front, &front) < 1e-12);
    }

    /// DSE with the exact oracle as predictor and full budget always
    /// reaches ADRS 0; a partial budget never yields negative ADRS.
    #[test]
    fn dse_budget_properties(raw in prop::collection::vec((1u32..500, 1u32..500), 8..40),
                             seed in 0u64..50) {
        let lat: Vec<f64> = raw.iter().map(|&(l, _)| l as f64).collect();
        let pow: Vec<f64> = raw.iter().map(|&(_, p)| p as f64).collect();
        let full = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(1.0, seed));
        prop_assert!(full.adrs < 1e-12);
        let part = run_dse(&lat, &pow, &pow, &DseConfig::with_budget(0.3, seed));
        prop_assert!(part.adrs >= 0.0);
        prop_assert!(part.sampled.len() <= full.sampled.len());
    }

    /// Autograd matches finite differences for a random two-layer network.
    #[test]
    fn autograd_matches_finite_difference(
        w_vals in prop::collection::vec(-0.9f32..0.9, 6),
        x_vals in prop::collection::vec(-1.0f32..1.0, 6)
    ) {
        let w = Matrix::from_vec(3, 2, w_vals.clone());
        let x = Matrix::from_vec(2, 3, x_vals.clone());
        let f = |wm: Matrix| -> f32 {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let wv = t.param(0, wm);
            let h = t.matmul(xv, wv);
            let r = t.relu(h);
            let s = t.sum_rows(r);
            let ones = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
            let y = t.matmul(s, ones);
            let loss = t.mse_loss(y, &[0.3]);
            t.value(loss).data[0]
        };
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let wv = t.param(0, w.clone());
        let h = t.matmul(xv, wv);
        let r = t.relu(h);
        let s = t.sum_rows(r);
        let ones = t.leaf(Matrix::from_vec(2, 1, vec![1.0, -1.0]));
        let y = t.matmul(s, ones);
        let loss = t.mse_loss(y, &[0.3]);
        let grads = t.backward(loss);
        let g = grads[0].as_ref().unwrap();
        let eps = 1e-2f32;
        for k in 0..w.len() {
            let mut plus = w.clone();
            plus.data[k] += eps;
            let mut minus = w.clone();
            minus.data[k] -= eps;
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            prop_assert!(
                (g.data[k] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "grad[{}]: {} vs {}", k, g.data[k], numeric
            );
        }
    }

    /// The tiled matmul kernels agree with a scalar reference on random
    /// shapes, including degenerate ones (0 rows, 1×N, N×1) and shapes
    /// straddling the 4×8 register-tile boundary. `matmul` and `matmul_tn`
    /// promise k-ascending summation, so they must match the reference
    /// *bitwise*; `matmul_nt` folds lanes and is compared within a
    /// tolerance.
    #[test]
    fn tiled_matmul_matches_scalar_reference(
        m in prop::sample::select(vec![0usize, 1, 3, 4, 5, 8, 13]),
        k in prop::sample::select(vec![1usize, 2, 7, 8, 9, 16]),
        n in prop::sample::select(vec![1usize, 3, 7, 8, 9, 17]),
        seed in 0u64..1000
    ) {
        let mut rng = powergear_repro::util::Rng64::new(seed);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.f32() * 2.0 - 1.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.f32() * 2.0 - 1.0).collect());

        // Scalar reference with k-ascending accumulation per element.
        let mut want = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data[i * k + kk] * b.data[kk * n + j];
                }
                want.data[i * n + j] = acc;
            }
        }

        let got = a.matmul(&b);
        prop_assert_eq!(
            got.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "matmul must be bitwise k-ascending"
        );

        // a = at^T keeps the same product; matmul_tn shares the contract.
        let at = a.transpose();
        let got_tn = at.matmul_tn(&b);
        prop_assert_eq!(
            got_tn.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // b = bt^T; matmul_nt uses a lane-folded dot, so allow rounding.
        let bt = b.transpose();
        let got_nt = a.matmul_nt(&bt);
        for (g, w) in got_nt.data.iter().zip(&want.data) {
            prop_assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "{} vs {}", g, w);
        }
    }

    /// Sample-weighted gradient accumulation: splitting a batch into
    /// uneven shards and merging must reproduce the per-sample reference
    /// accumulation *exactly*. Gradients are integer-valued and shard
    /// sizes are powers of two, so every intermediate (shard mean, weight
    /// scaling, sums) is exact in f32 and the comparison is bitwise.
    #[test]
    fn grad_accum_weighted_merge_matches_per_sample_reference(
        samples in prop::collection::vec(prop::collection::vec(-8i32..9, 4), 1..25),
        split_seed in 0u64..1000
    ) {
        let n = samples.len();

        // Per-sample reference: every gradient added with weight 1.
        let mut reference = GradAccum::new(1);
        for s in &samples {
            let g = Matrix::from_vec(2, 2, s.iter().map(|&v| v as f32).collect());
            reference.add(vec![Some(g)], 1);
        }

        // Shard the batch into random power-of-two-sized shards (uneven
        // mixes like 8+4+1), add each shard's exact mean with its sample
        // count, and merge the shard accumulators in order.
        let mut rng = powergear_repro::util::Rng64::new(split_seed);
        let mut sizes = Vec::new();
        let mut left = n;
        while left > 0 {
            let mut take = 1usize << rng.below(4); // 1, 2, 4, or 8
            while take > left { take /= 2; }
            sizes.push(take);
            left -= take;
        }
        let mut merged = GradAccum::new(1);
        let mut offset = 0;
        for &sz in &sizes {
            let shard = &samples[offset..offset + sz];
            offset += sz;
            let mut mean = vec![0.0f32; 4];
            for s in shard {
                for (m, &v) in mean.iter_mut().zip(s) {
                    *m += v as f32;
                }
            }
            for m in &mut mean {
                *m /= sz as f32; // exact: power-of-two divisor
            }
            let mut shard_acc = GradAccum::new(1);
            shard_acc.add(vec![Some(Matrix::from_vec(2, 2, mean))], sz);
            merged.merge_from(&shard_acc);
        }

        prop_assert_eq!(merged.samples(), reference.samples());
        let got = merged.mean();
        let want = reference.mean();
        prop_assert_eq!(
            got[0].as_ref().unwrap().data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want[0].as_ref().unwrap().data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "sharded mean must equal the per-sample batch mean exactly (shards {:?})",
            sizes
        );
    }
}
