//! Protocol and end-to-end tests for the `powergear serve` daemon.
//!
//! Three layers, mirroring the `pg_store` corruption suite:
//!
//! 1. **Framing properties** — `PGRPC` frames (`docs/PROTOCOL.md`)
//!    roundtrip bit-exactly, and truncated / bit-flipped / bad-magic
//!    byte streams produce *typed* errors, never panics.
//! 2. **Payload properties** — Predict request/response payloads carry
//!    graphs and f64 predictions without losing a bit.
//! 3. **Socket end-to-end** — a live daemon serves N concurrent clients
//!    predictions bit-identical to the in-process sequential path, and a
//!    mid-stream hot model swap drops zero requests and never mixes
//!    models within a response.

use proptest::prelude::*;

use powergear_repro::gnn::{Ensemble, ModelConfig, PowerModel};
use powergear_repro::graphcon::{PowerGraph, Relation};
use powergear_repro::powergear::daemon::{Daemon, DaemonConfig, DaemonHandle};
use powergear_repro::powergear::PowerGear;
use powergear_repro::store::frame::{
    self, error_code, FrameType, PredictRequest, PredictResponse, RawFrame, HEADER_LEN,
};
use powergear_repro::store::{ArtifactMeta, ModelRegistry, StoreError};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Helpers

/// Unique temp dir per call so concurrently running tests never collide.
fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pg_serve_proto_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic untrained estimator — fast to build, bit-stable to serve.
fn tiny_gear(seed: u64) -> PowerGear {
    let cfg = ModelConfig::hec(8);
    PowerGear {
        total_model: Ensemble {
            models: vec![PowerModel::new(cfg.clone(), seed)],
        },
        dynamic_model: Ensemble {
            models: vec![PowerModel::new(cfg, seed ^ 0xbeef)],
        },
    }
}

fn graph(seed: u64) -> PowerGraph {
    let nodes = 3 + (seed % 4) as usize;
    let f = PowerGraph::NODE_FEATS;
    let mut node_feats = vec![0.0f32; nodes * f];
    for n in 0..nodes {
        node_feats[n * f + (seed as usize + n) % f] = 1.0;
    }
    let edges: Vec<(u32, u32)> = (1..nodes as u32).map(|d| (d - 1, d)).collect();
    let ne = edges.len();
    PowerGraph {
        kernel: "proto".into(),
        design_id: format!("p{seed}"),
        num_nodes: nodes,
        node_feats,
        edges,
        edge_feats: (0..ne).map(|i| [0.1 * i as f32, 0.2, 0.3, 0.4]).collect(),
        edge_rel: (0..ne)
            .map(|i| match i % 4 {
                0 => Relation::AA,
                1 => Relation::AN,
                2 => Relation::NA,
                _ => Relation::NN,
            })
            .collect(),
        meta: vec![0.5; 10],
    }
}

fn publish(dir: &Path, name: &str, kernel: &str, gear: &PowerGear, fp: u64) {
    let reg = ModelRegistry::open(dir).unwrap();
    let mut meta = ArtifactMeta::now(kernel, "total+dynamic");
    meta.train_fingerprint = fp;
    reg.publish(name, &gear.to_artifact(meta, &[], 0)).unwrap();
}

fn daemon_on(dir: &Path) -> DaemonHandle {
    let mut cfg = DaemonConfig::new("127.0.0.1:0");
    cfg.registry_dir = Some(dir.to_path_buf());
    cfg.batch_deadline = Duration::from_micros(200);
    cfg.poll_interval = Duration::from_millis(10);
    Daemon::bind(cfg).unwrap().spawn()
}

fn rpc(stream: &mut TcpStream, req: &RawFrame) -> RawFrame {
    frame::write_frame(stream, req).unwrap();
    frame::read_frame(stream).unwrap().expect("response frame")
}

// ---------------------------------------------------------------------------
// 1. Framing properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is the identity on (tag, payload) and consumes
    /// exactly the encoded length, for every tag byte — including tags no
    /// current FrameType maps to (forward compatibility).
    #[test]
    fn frame_roundtrip_is_bit_exact(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let encoded = frame::encode_frame(&RawFrame { tag, payload: payload.clone() });
        prop_assert_eq!(encoded.len(), HEADER_LEN + payload.len());
        let (decoded, consumed) = frame::decode_frame(&encoded).unwrap();
        prop_assert_eq!(consumed, encoded.len());
        prop_assert_eq!(decoded.tag, tag);
        prop_assert_eq!(decoded.payload, payload);
    }

    /// Every strict prefix of a valid frame decodes to a typed error —
    /// `Truncated` once the magic is recognizable — and never panics.
    #[test]
    fn truncated_frames_give_typed_errors(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_seed in any::<usize>(),
    ) {
        let encoded = frame::encode_frame(&RawFrame { tag, payload });
        let cut = cut_seed % encoded.len(); // strict prefix
        let err = frame::decode_frame(&encoded[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::BadMagic { .. }),
            "unexpected error for cut {cut}: {err}"
        );
        // the streaming reader agrees: EOF mid-frame is Truncated, an
        // empty stream is a clean close
        let mut cursor = &encoded[..cut];
        match frame::read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(_)) => prop_assert!(false, "decoded a truncated frame"),
            Err(e) => prop_assert!(
                matches!(e, StoreError::Truncated { .. } | StoreError::BadMagic { .. }),
                "unexpected stream error for cut {cut}: {e}"
            ),
        }
    }

    /// Flipping any single bit never panics the decoder, and a flip
    /// inside the payload region is always caught (CRC32 detects all
    /// single-bit errors).
    #[test]
    fn single_bit_flips_never_panic_and_payload_flips_are_caught(
        tag in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip_seed in any::<usize>(),
    ) {
        let mut encoded = frame::encode_frame(&RawFrame { tag, payload });
        let bit = flip_seed % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        match frame::decode_frame(&encoded) {
            Err(_) => {} // typed rejection is always acceptable
            Ok((got, consumed)) => {
                // a surviving decode must stay in-bounds and can only
                // come from a header flip the format legitimately
                // tolerates (tag byte or a version downgrade)
                prop_assert!(consumed <= encoded.len());
                prop_assert!(
                    bit / 8 < HEADER_LEN,
                    "payload bit flip at {bit} slipped past the CRC"
                );
                let _ = got.frame_type(); // total, even for unknown tags
            }
        }
    }

    /// Junk that does not start with the `PGRP` magic is rejected as
    /// `BadMagic` — foreign data is diagnosed as such, not as truncation.
    #[test]
    fn bad_magic_is_a_typed_error(junk in prop::collection::vec(any::<u8>(), HEADER_LEN..64)) {
        let mut junk = junk;
        junk[0] = !frame::FRAME_MAGIC[0]; // guarantee a magic mismatch
        let err = frame::decode_frame(&junk).unwrap_err();
        prop_assert!(matches!(err, StoreError::BadMagic { .. }), "got: {err}");
        let mut cursor = &junk[..];
        let err = frame::read_frame(&mut cursor).unwrap_err();
        prop_assert!(matches!(err, StoreError::BadMagic { .. }), "got: {err}");
    }
}

// ---------------------------------------------------------------------------
// 2. Payload properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Predict request payloads carry graphs bit-exactly.
    #[test]
    fn predict_request_roundtrips(seeds in prop::collection::vec(0u64..1000, 1..5)) {
        let req = PredictRequest {
            kernel: "mvt".into(),
            graphs: seeds.iter().map(|&s| graph(s)).collect(),
        };
        let back = PredictRequest::from_payload(&req.to_payload()).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Predict response payloads carry f64 predictions bit-exactly,
    /// including non-finite values.
    #[test]
    fn predict_response_roundtrips(
        bits in prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
        fp in any::<u64>(),
    ) {
        let resp = PredictResponse {
            model: "m".into(),
            fingerprint: fp,
            predictions: bits
                .iter()
                .map(|&(t, d)| (f64::from_bits(t), f64::from_bits(d)))
                .collect(),
        };
        let back = PredictResponse::from_payload(&resp.to_payload()).unwrap();
        prop_assert_eq!(back.model, resp.model);
        prop_assert_eq!(back.fingerprint, resp.fingerprint);
        prop_assert_eq!(back.predictions.len(), resp.predictions.len());
        for ((t1, d1), (t2, d2)) in back.predictions.iter().zip(&resp.predictions) {
            prop_assert_eq!(t1.to_bits(), t2.to_bits());
            prop_assert_eq!(d1.to_bits(), d2.to_bits());
        }
    }

    /// Corrupt payloads under a *valid* frame are rejected by the typed
    /// payload decoders, never a panic (the daemon answers BAD_REQUEST).
    #[test]
    fn corrupt_predict_payloads_never_panic(junk in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = PredictRequest::from_payload(&junk);
        let _ = PredictResponse::from_payload(&junk);
        let _ = frame::StatsResponse::from_payload(&junk);
        let _ = frame::ModelListResponse::from_payload(&junk);
        let _ = frame::ErrorFrame::from_payload(&junk);
    }
}

// ---------------------------------------------------------------------------
// 3. Socket end-to-end

/// N concurrent clients, each rotating request compositions through a
/// shared graph pool, must all receive predictions bit-identical to the
/// in-process sequential `estimate_graphs` — no matter how the daemon
/// coalesced their requests into batches.
#[test]
fn concurrent_clients_are_bit_identical_to_in_process() {
    let dir = tmp_dir("e2e");
    let gear = tiny_gear(11);
    publish(&dir, "proto-v1", "proto", &gear, 0xfeed);
    let handle = daemon_on(&dir);
    let addr = handle.addr();

    let graphs: Vec<PowerGraph> = (0..6).map(graph).collect();
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let expected = gear.estimate_graphs(&refs);

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 8;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let graphs = graphs.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                for r in 0..REQUESTS {
                    // client- and request-dependent composition so
                    // concurrent batches coalesce different mixes
                    let indices: Vec<usize> = (0..1 + (c + r) % 4)
                        .map(|i| (c * 7 + r + i) % graphs.len())
                        .collect();
                    let req = PredictRequest {
                        kernel: "proto".into(),
                        graphs: indices.iter().map(|&i| graphs[i].clone()).collect(),
                    };
                    let resp = rpc(&mut s, &RawFrame::new(FrameType::Predict, req.to_payload()));
                    assert_eq!(resp.frame_type(), Some(FrameType::PredictOk));
                    let out = PredictResponse::from_payload(&resp.payload).unwrap();
                    assert_eq!(out.model, "proto-v1");
                    assert_eq!(out.predictions.len(), indices.len());
                    for (&gi, &(t, d)) in indices.iter().zip(&out.predictions) {
                        let (et, ed) = expected[gi];
                        assert_eq!(t.to_bits(), et.to_bits(), "graph {gi} total bits");
                        assert_eq!(d.to_bits(), ed.to_bits(), "graph {gi} dynamic bits");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let stats = handle.stats();
    assert_eq!(stats.requests, (CLIENTS * REQUESTS) as u64);
    assert_eq!(stats.errors, 0);
    handle.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Republishing the model while clients stream requests must drop
/// nothing and never mix models: every response carries one fingerprint,
/// and its bits must match that model's in-process predictions exactly.
#[test]
fn hot_swap_mid_stream_drops_nothing_and_never_mixes_models() {
    let dir = tmp_dir("swap");
    let gear_v1 = tiny_gear(21);
    let gear_v2 = tiny_gear(22);
    publish(&dir, "proto-live", "proto", &gear_v1, 1);
    let handle = daemon_on(&dir);
    let addr = handle.addr();

    let graphs: Vec<PowerGraph> = (0..4).map(graph).collect();
    let refs: Vec<&PowerGraph> = graphs.iter().collect();
    let expected_v1 = gear_v1.estimate_graphs(&refs);
    let expected_v2 = gear_v2.estimate_graphs(&refs);

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 30;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let graphs = graphs.clone();
            let (e1, e2) = (expected_v1.clone(), expected_v2.clone());
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let mut fps = Vec::with_capacity(REQUESTS);
                for r in 0..REQUESTS {
                    let indices: Vec<usize> = (0..2).map(|i| (c + r + i) % graphs.len()).collect();
                    let req = PredictRequest {
                        kernel: "proto".into(),
                        graphs: indices.iter().map(|&i| graphs[i].clone()).collect(),
                    };
                    let resp = rpc(&mut s, &RawFrame::new(FrameType::Predict, req.to_payload()));
                    // zero dropped: every request in flight across the
                    // swap still gets a successful response
                    assert_eq!(resp.frame_type(), Some(FrameType::PredictOk));
                    let out = PredictResponse::from_payload(&resp.payload).unwrap();
                    assert_eq!(out.model, "proto-live");
                    // zero mixed: ALL bits of one response must belong
                    // to the single model version it claims to be from
                    let expected = match out.fingerprint {
                        1 => &e1,
                        2 => &e2,
                        other => panic!("unknown fingerprint {other}"),
                    };
                    for (&gi, &(t, d)) in indices.iter().zip(&out.predictions) {
                        let (et, ed) = expected[gi];
                        assert_eq!(
                            t.to_bits(),
                            et.to_bits(),
                            "fp {} graph {gi}",
                            out.fingerprint
                        );
                        assert_eq!(
                            d.to_bits(),
                            ed.to_bits(),
                            "fp {} graph {gi}",
                            out.fingerprint
                        );
                    }
                    fps.push(out.fingerprint);
                    thread::sleep(Duration::from_millis(2));
                }
                fps
            })
        })
        .collect();

    // swap mid-stream: clients run ~60 ms+, republish after ~20 ms
    thread::sleep(Duration::from_millis(20));
    publish(&dir, "proto-live", "proto", &gear_v2, 2);

    let mut all_fps: Vec<u64> = Vec::new();
    for w in workers {
        let fps = w.join().unwrap();
        assert_eq!(fps.len(), REQUESTS, "a client dropped requests");
        // each client observes a monotone v1 → v2 transition, never a
        // flap back to the old model
        let mut sorted = fps.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fps, "fingerprints regressed mid-stream");
        all_fps.extend(fps);
    }

    // the new model must eventually serve (poller interval is 10 ms and
    // clients streamed for well past that) — if timing ever got unlucky,
    // confirm with a final polled request rather than flake
    if !all_fps.contains(&2) {
        let mut s = TcpStream::connect(addr).unwrap();
        let req = PredictRequest {
            kernel: "proto".into(),
            graphs: vec![graphs[0].clone()],
        };
        let raw = RawFrame::new(FrameType::Predict, req.to_payload());
        let mut swapped = false;
        for _ in 0..200 {
            thread::sleep(Duration::from_millis(10));
            let out = PredictResponse::from_payload(&rpc(&mut s, &raw).payload).unwrap();
            if out.fingerprint == 2 {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "hot swap never observed");
    }
    assert!(handle.stats().swaps >= 1);
    handle.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Over a real socket, a desynced byte stream gets a typed BAD_REQUEST
/// error frame and a clean close — the daemon never panics or hangs.
#[test]
fn socket_garbage_gets_bad_request_then_clean_close() {
    use std::io::Write;
    let dir = tmp_dir("sockbad");
    publish(&dir, "m", "proto", &tiny_gear(31), 1);
    let handle = daemon_on(&dir);
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    // exactly one header's worth: unread bytes at close would RST the
    // socket and race the error frame away
    s.write_all(b"sixteen junk byt").unwrap();
    let resp = frame::read_frame(&mut s).unwrap().expect("error frame");
    assert_eq!(resp.frame_type(), Some(FrameType::Error));
    let err = frame::ErrorFrame::from_payload(&resp.payload).unwrap();
    assert_eq!(err.code, error_code::BAD_REQUEST);
    assert!(frame::read_frame(&mut s).unwrap().is_none());
    handle.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
