//! Determinism smoke test: the full pipeline (dataset build → graph
//! construction → one training epoch) must produce bit-identical metrics
//! across two runs with the same `Rng64` seed, including with a parallel
//! dataset build.

use powergear_repro::datasets::{build_kernel_dataset, polybench, DatasetConfig, PowerTarget};
use powergear_repro::gnn::{train_ensemble, ModelConfig, TrainConfig};
use powergear_repro::graphcon::PowerGraph;

fn one_epoch_metrics() -> (Vec<u64>, u64) {
    let cfg = DatasetConfig {
        size: 6,
        max_samples: 12,
        seed: 7,
        threads: 2, // parallel build must not perturb sample order or labels
    };
    let ds = build_kernel_dataset(&polybench::atax(6), &cfg);
    let data = ds.labeled(PowerTarget::Dynamic);

    let mut tc = TrainConfig::quick(ModelConfig::hec(8));
    tc.epochs = 1;
    tc.folds = 2;
    tc.seeds = vec![5];
    tc.threads = 1;
    let ensemble = train_ensemble(&data, &tc);

    let graphs: Vec<&PowerGraph> = data.iter().map(|(g, _)| *g).collect();
    let preds = ensemble
        .predict(&graphs)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let err = ensemble.evaluate(&data).to_bits();
    (preds, err)
}

#[test]
fn one_training_epoch_is_bit_identical_across_runs() {
    let (preds1, err1) = one_epoch_metrics();
    let (preds2, err2) = one_epoch_metrics();
    assert_eq!(
        preds1, preds2,
        "predictions diverged between identical runs"
    );
    assert_eq!(
        err1, err2,
        "evaluation metric diverged between identical runs"
    );
    assert!(!preds1.is_empty());
}
