//! Determinism smoke test: the full pipeline (dataset build → graph
//! construction → one training epoch) must produce bit-identical metrics
//! across two runs with the same `Rng64` seed, including with a parallel
//! dataset build and with a shared memoizing HLS cache.

use powergear_repro::datasets::{
    build_all, build_kernel_dataset, build_kernel_dataset_cached, polybench, DatasetConfig,
    HlsCache, PowerTarget,
};
use powergear_repro::gnn::{train_ensemble, ModelConfig, TrainConfig};
use powergear_repro::graphcon::PowerGraph;
use powergear_repro::hls::{Directives, HlsFlow};

fn one_epoch_metrics() -> (Vec<u64>, u64) {
    let cfg = DatasetConfig {
        size: 6,
        max_samples: 12,
        seed: 7,
        threads: 2, // parallel build must not perturb sample order or labels
    };
    let ds = build_kernel_dataset(&polybench::atax(6), &cfg);
    let data = ds.labeled(PowerTarget::Dynamic);

    let mut tc = TrainConfig::quick(ModelConfig::hec(8));
    tc.epochs = 1;
    tc.folds = 2;
    tc.seeds = vec![5];
    tc.threads = 1;
    let ensemble = train_ensemble(&data, &tc);

    let graphs: Vec<&PowerGraph> = data.iter().map(|(g, _)| *g).collect();
    let preds = ensemble
        .predict(&graphs)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let err = ensemble.evaluate(&data).to_bits();
    (preds, err)
}

#[test]
fn hls_cache_hit_is_identical_to_cold_run() {
    let kernel = polybench::atax(6);
    let mut d = Directives::new();
    d.pipeline("j");
    let cold = HlsFlow::new().run(&kernel, &d).expect("cold synthesis");
    let cache = HlsCache::new();
    let miss = cache.run(&kernel, &d).expect("first cached run");
    let hit = cache.run(&kernel, &d).expect("second cached run");
    assert_eq!(*miss, cold, "cache miss must reproduce the cold design");
    assert_eq!(*hit, cold, "cache hit must return the identical design");
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);
}

#[test]
fn dataset_build_with_shared_cache_is_deterministic() {
    let cfg = DatasetConfig {
        size: 6,
        max_samples: 10,
        seed: 7,
        threads: 2, // parallel workers share one cache
    };
    let kernel = polybench::atax(6);
    let uncached = build_kernel_dataset(&kernel, &cfg);
    let cache = HlsCache::new();
    let first = build_kernel_dataset_cached(&kernel, &cfg, &cache);
    let second = build_kernel_dataset_cached(&kernel, &cfg, &cache);
    assert_eq!(
        uncached, first,
        "shared cache must not change dataset contents"
    );
    assert_eq!(first, second, "warm rebuild must be bit-identical");
    assert!(
        cache.hits() > cfg.max_samples,
        "warm rebuild must be served from cache (hits: {})",
        cache.hits()
    );
}

/// `build_all` must be bit-identical at any worker-thread count: both the
/// parallel cold-synthesis phase and the parallel sample-assembly phase
/// are work-stealing (nondeterministic scheduling), so this pins the
/// property that scheduling never leaks into dataset contents.
fn build_all_across_threads(cfg: DatasetConfig) {
    let reference = build_all(&DatasetConfig {
        threads: 1,
        ..cfg.clone()
    });
    for threads in [2, 4] {
        let parallel = build_all(&DatasetConfig {
            threads,
            ..cfg.clone()
        });
        assert_eq!(
            reference, parallel,
            "build_all diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn build_all_scale_determinism_quick() {
    // CI profile: small problem size and space, all nine kernels.
    build_all_across_threads(DatasetConfig {
        size: 6,
        max_samples: 8,
        seed: 3,
        threads: 1,
    });
}

#[test]
#[ignore = "paper-scale (500 points/kernel); run with --ignored in the dataset-scale CI job"]
fn build_all_scale_determinism_paper() {
    build_all_across_threads(DatasetConfig {
        size: 8,
        max_samples: 500,
        seed: 3,
        threads: 1,
    });
}

/// XL scale: the `paper_xl` 1000-point profile over the flat-arena cold
/// path. Worker-local `TraceScratch` reuse (arena recycling) must never
/// leak into dataset contents at any thread count.
#[test]
#[ignore = "XL-scale (1000 points/kernel); run with --ignored in the dataset-scale CI job"]
fn build_all_scale_determinism_paper_xl() {
    build_all_across_threads(DatasetConfig {
        size: 8,
        seed: 3,
        threads: 1,
        ..DatasetConfig::paper_xl()
    });
}

/// Training must be bit-identical at any `threads` setting: shard
/// boundaries are a pure function of the batch, per-shard RNG seeds are
/// derived from (seed, epoch, batch, shard), and gradient reduction runs
/// in fixed shard order — so thread count is pure scheduling. The dataset
/// is sized so batches split into multiple uneven shards (8 + 2), which
/// also exercises the sample-weighted gradient merge.
#[test]
fn training_is_bit_identical_across_thread_counts() {
    let cfg = DatasetConfig {
        size: 6,
        max_samples: 20,
        seed: 7,
        threads: 2,
    };
    let ds = build_kernel_dataset(&polybench::atax(6), &cfg);
    let data = ds.labeled(PowerTarget::Dynamic);
    assert!(
        data.len() >= 16,
        "need multi-shard batches, got {}",
        data.len()
    );

    let mut tc = TrainConfig::quick(ModelConfig::hec(8));
    tc.epochs = 2;
    tc.folds = 2;
    tc.seeds = vec![5];

    let graphs: Vec<&PowerGraph> = data.iter().map(|(g, _)| *g).collect();
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4] {
        tc.threads = threads;
        let ensemble = train_ensemble(&data, &tc);
        let bits: Vec<u64> = ensemble
            .predict(&graphs)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(
                r, &bits,
                "training diverged between 1 and {threads} threads"
            ),
        }
    }
}

#[test]
fn one_training_epoch_is_bit_identical_across_runs() {
    let (preds1, err1) = one_epoch_metrics();
    let (preds2, err2) = one_epoch_metrics();
    assert_eq!(
        preds1, preds2,
        "predictions diverged between identical runs"
    );
    assert_eq!(
        err1, err2,
        "evaluation metric diverged between identical runs"
    );
    assert!(!preds1.is_empty());
}
