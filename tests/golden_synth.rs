//! Golden-sample regression harness for the cold synthesis path.
//!
//! A checked-in fixture (`tests/golden/synth_digests.tsv`) pins one digest
//! per (kernel, directive id): the digest covers the HLS report (resources,
//! latency, clock), the annotated power graph (topology, node/edge/meta
//! features, bit-exact) and the oracle power labels. Any performance work on
//! lowering, scheduling, binding, graph construction or trimming must
//! reproduce these digests **bit-exactly** — an optimization that changes
//! any of them is a semantics change, not a speedup, and fails here.
//!
//! Regenerating (only legitimate after an *intentional* semantic change):
//!
//! ```text
//! PG_GOLDEN_REGEN=1 cargo test --test golden_synth
//! ```

use powergear_repro::datasets::{build_sample, polybench, sample_space};
use powergear_repro::graphcon::PowerGraph;
use powergear_repro::hls::{Directives, HlsFlow};
use powergear_repro::powersim::PowerBreakdown;
use powergear_repro::util::rng::hash64;

/// Problem size of the fixture kernels (small enough for CI, large enough
/// to exercise multi-loop scheduling and partitioned banking).
const SIZE: usize = 8;
/// Design points digested per kernel.
const POINTS: usize = 8;
/// Sampling seed for the fixture design points.
const SEED: u64 = 1;
/// Fixture kernels: distinct loop structures (two-nest, reduction, triple,
/// multi-block sequential chain, scalar-weighted accumulation). The first
/// three pin the original 24 digests; `atax` and `gesummv` extend the wall
/// to 40 for the arena/compressed-stream path.
const KERNELS: [&str; 5] = ["mvt", "bicg", "gemm", "atax", "gesummv"];

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/synth_digests.tsv"
);

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    push_u64(buf, v.to_bits());
}

fn push_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn graph_bytes(buf: &mut Vec<u8>, g: &PowerGraph) {
    push_u64(buf, g.num_nodes as u64);
    push_u64(buf, g.num_edges() as u64);
    for f in &g.node_feats {
        push_f32(buf, *f);
    }
    for &(s, d) in &g.edges {
        push_u32(buf, s);
        push_u32(buf, d);
    }
    for ef in &g.edge_feats {
        for v in ef {
            push_f32(buf, *v);
        }
    }
    for r in &g.edge_rel {
        buf.push(r.index() as u8);
    }
    for m in &g.meta {
        push_f32(buf, *m);
    }
}

fn power_bytes(buf: &mut Vec<u8>, p: &PowerBreakdown) {
    for v in [p.total, p.dynamic, p.static_, p.nets, p.internal, p.clock] {
        push_f64(buf, v);
    }
}

/// Digest of everything the estimator pipeline consumes from one design
/// point: report, graph and labels. Bit-exact by construction.
fn sample_digest(kernel_name: &str) -> Vec<(String, u64)> {
    let kernel = polybench::by_name(kernel_name, SIZE).expect("fixture kernel");
    let baseline = HlsFlow::new()
        .run(&kernel, &Directives::new())
        .expect("baseline synthesis")
        .report;
    let stimuli = powergear_repro::activity::Stimuli::for_kernel(&kernel, SEED);
    sample_space(&kernel, POINTS, SEED)
        .iter()
        .map(|d| {
            let s = build_sample(&kernel, d, &stimuli, &baseline);
            let mut buf = Vec::new();
            push_u32(&mut buf, s.report.lut);
            push_u32(&mut buf, s.report.ff);
            push_u32(&mut buf, s.report.dsp);
            push_u32(&mut buf, s.report.bram);
            push_u64(&mut buf, s.report.latency_cycles);
            push_f64(&mut buf, s.report.clock_ns);
            push_u64(&mut buf, s.latency);
            power_bytes(&mut buf, &s.power);
            graph_bytes(&mut buf, &s.graph);
            (s.design_id.clone(), hash64(&buf))
        })
        .collect()
}

fn current_digests() -> Vec<(String, u64)> {
    KERNELS.iter().flat_map(|k| sample_digest(k)).collect()
}

fn render(digests: &[(String, u64)]) -> String {
    let mut out = String::from("# design_id\tdigest (see tests/golden_synth.rs)\n");
    for (id, d) in digests {
        out.push_str(&format!("{id}\t{d:016x}\n"));
    }
    out
}

fn parse_fixture(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            let (id, hex) = l.split_once('\t').expect("fixture line is id\\tdigest");
            (
                id.to_string(),
                u64::from_str_radix(hex.trim(), 16).expect("hex digest"),
            )
        })
        .collect()
}

#[test]
fn synthesis_reproduces_golden_digests() {
    let current = current_digests();
    if std::env::var_os("PG_GOLDEN_REGEN").is_some() {
        std::fs::write(FIXTURE, render(&current)).expect("write fixture");
        eprintln!("regenerated {FIXTURE} with {} digests", current.len());
        return;
    }
    let golden = parse_fixture(&std::fs::read_to_string(FIXTURE).unwrap_or_else(|e| {
        panic!("missing fixture {FIXTURE} ({e}); regenerate with PG_GOLDEN_REGEN=1")
    }));
    assert_eq!(
        golden.len(),
        KERNELS.len() * POINTS,
        "fixture size drifted from the harness configuration"
    );
    let mismatches: Vec<String> = golden
        .iter()
        .zip(&current)
        .filter_map(|((gid, gd), (cid, cd))| {
            if gid != cid {
                Some(format!(
                    "design order drifted: fixture `{gid}` vs current `{cid}`"
                ))
            } else if gd != cd {
                Some(format!("`{gid}`: golden {gd:016x} != current {cd:016x}"))
            } else {
                None
            }
        })
        .collect();
    assert!(
        mismatches.is_empty(),
        "cold synthesis no longer reproduces the golden samples — an \
         optimization changed semantics:\n  {}",
        mismatches.join("\n  ")
    );
}

#[test]
fn digests_are_sensitive_to_labels() {
    // Sanity: the digest must actually depend on its inputs — two different
    // design points of the same kernel must not collide.
    let d = sample_digest("mvt");
    assert!(d.len() >= 2);
    assert_ne!(d[0].1, d[1].1, "distinct designs must digest differently");
}
