//! Offline shim for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this crate vendors the *subset* of the proptest 1.x
//! API that `tests/properties.rs` uses:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * [`any`] for primitive types, range strategies (`0usize..4`,
//!   `-0.9f32..0.9`, ...), tuple strategies up to arity 6;
//! * `prop::collection::vec` (with either an exact count or a size range)
//!   and `prop::sample::select`;
//! * `ProptestConfig::with_cases` and the `proptest!`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!` macros.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! splitmix64 stream (same values every run — good for reproducible CI),
//! there is **no shrinking**, and `prop_assert*` panics like `assert*`
//! instead of returning a `TestCaseError`.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG

/// Deterministic splitmix64 generator driving all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded draw; bias is negligible for test sizes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Config and runner

/// Subset of proptest's `test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;

    /// Minimal stand-in for proptest's `TestRunner`: hands out one
    /// deterministic RNG per test case.
    pub struct TestRunner {
        config: Config,
        name_seed: u64,
    }

    impl TestRunner {
        pub fn new_for_test(config: Config, test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                config,
                name_seed: h,
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for_case(&self, case: u32) -> crate::TestRng {
            crate::TestRng::from_seed(self.name_seed.wrapping_add(case as u64))
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>() and ranges

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn sample(rng: &mut TestRng) -> Self;
}

/// Whole-domain strategy for `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// Returns the canonical strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Combinator modules

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list, like
    /// `proptest::sample::select`.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: an exact count or a range.
    pub trait IntoSizeRange {
        /// Inclusive lower bound and exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing vectors whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_excl: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_excl) = size.bounds();
        assert!(min < max_excl, "empty size range for collection::vec");
        VecStrategy {
            element,
            min,
            max_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_excl - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `bool` strategies namespace (`prop::bool::ANY` in real proptest).
pub mod bool {
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    pub struct Weighted {
        p: f64,
    }

    impl super::Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

// ---------------------------------------------------------------------------
// Macros

/// Assertion that fails the current test case (panics in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(any::<u32>(), 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let __pt_runner = $crate::test_runner::TestRunner::new_for_test(
                __pt_config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            $(let $arg = &($strat);)+
            for __pt_case in 0..__pt_runner.cases() {
                let mut __pt_rng = __pt_runner.rng_for_case(__pt_case);
                $(let $arg = $crate::Strategy::generate($arg, &mut __pt_rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{bool, collection, sample};
    }
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn select_and_map(k in prop::sample::select(vec![2usize, 4, 8]).prop_map(|v| v * 2)) {
            prop_assert!(k == 4 || k == 8 || k == 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let r = crate::test_runner::TestRunner::new_for_test(ProptestConfig::with_cases(4), "x");
        let a: Vec<u64> = (0..4).map(|i| r.rng_for_case(i).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|i| r.rng_for_case(i).next_u64()).collect();
        assert_eq!(a, b);
    }
}
