//! Offline shim for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this crate vendors the *subset* of the criterion 0.5
//! API that the workspace benches use: `Criterion`, `BenchmarkGroup`
//! (including `Throughput` reporting), `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros (both
//! the plain and the `name/config/targets` forms).
//!
//! Timing is real (median over the configured sample count, after a short
//! warm-up) and printed in a criterion-like one-line-per-bench format, but
//! there is no statistical analysis, no baseline persistence, and no HTML
//! report. `cargo bench --no-run` and `cargo bench` both work.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state: default measurement/warm-up budgets that
/// benchmark groups inherit.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// Per-iteration work quantity; when set on a group, every bench line also
/// reports throughput (elements or bytes per second) derived from the
/// median time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration (reported as `elem/s`).
    Elements(u64),
    /// Bytes processed per iteration (reported as `B/s`).
    Bytes(u64),
}

impl Throughput {
    /// Formats the rate implied by one iteration taking `median`.
    fn rate(&self, median: Duration) -> String {
        let secs = median.as_secs_f64();
        let (count, unit) = match self {
            Throughput::Elements(n) => (*n as f64, "elem/s"),
            Throughput::Bytes(n) => (*n as f64, "B/s"),
        };
        if secs <= 0.0 {
            return format!("inf {unit}");
        }
        let rate = count / secs;
        if rate >= 1e9 {
            format!("{:.3} G{unit}", rate / 1e9)
        } else if rate >= 1e6 {
            format!("{:.3} M{unit}", rate / 1e6)
        } else if rate >= 1e3 {
            format!("{:.3} K{unit}", rate / 1e3)
        } else {
            format!("{rate:.3} {unit}")
        }
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration work quantity; subsequent benches in the
    /// group report throughput alongside the median time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if id.to_string().is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b);
        report(&label, b.median, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median: Duration::ZERO,
        };
        f(&mut b, input);
        report(&label, b.median, self.throughput);
        self
    }

    pub fn finish(self) {}
}

fn report(label: &str, median: Duration, throughput: Option<Throughput>) {
    match throughput {
        Some(t) => println!(
            "{label:<48} time: [{median:>12.3?} median]  thrpt: [{}]",
            t.rate(median)
        ),
        None => println!("{label:<48} time: [{median:>12.3?} median]"),
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose an iteration count per sample so the whole measurement
        // phase roughly fits the measurement budget.
        let per_sample_budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (per_sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample);
        }
        samples.sort();
        self.median = samples[samples.len() / 2];
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed());
        }
        samples.sort();
        self.median = samples[samples.len() / 2];
    }
}

/// Batch sizing hint (accepted for API compatibility; ignored).
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --help`-style filter arguments are ignored by
            // this shim, but `--test`/`--bench` flags passed by cargo must
            // not cause a panic.
            $( $group(); )+
        }
    };
}
